"""Compiler Step 1: block decomposition (paper Fig. 7).

A greedy pass over the regularized DAG groups interior nodes into
tree-shaped *execution blocks* whose depth does not exceed the hardware
tree depth.  A node absorbs its children's blocks when the combined
depth stays within budget and no child value is needed elsewhere
(shared nodes become block outputs so their value materializes to
registers once).  Each block then maps onto one tree-PE issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.dag.graph import Dag, OpType

_LEAF_OPS = {OpType.LITERAL, OpType.LEAF, OpType.INPUT}


@dataclass
class Block:
    """A schedulable subtree of the DAG.

    ``nodes`` lists interior DAG node ids in topological order;
    ``inputs`` the DAG node ids whose values feed the block (leaves or
    other blocks' outputs); ``output`` the root node id whose value the
    block produces.
    """

    block_id: int
    nodes: List[int] = field(default_factory=list)
    inputs: List[int] = field(default_factory=list)
    output: int = -1
    depth: int = 0

    @property
    def num_ops(self) -> int:
        return len(self.nodes)


def decompose_blocks(dag: Dag, max_depth: int) -> List[Block]:
    """Greedy depth-bounded decomposition into tree-shaped blocks.

    Requires a two-input-regularized DAG (fan-in ≤ 2).  The returned
    blocks cover every interior node exactly once; each block is a tree
    whose root is ``block.output``.  Use :func:`block_dependencies` for
    the scheduling order — block ids are creation order, not dependency
    order.
    """
    if dag.max_fan_in() > 2:
        raise ValueError("block decomposition requires a two-input DAG")
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")

    parents = dag.parents_map()
    order = dag.topological_order()
    placement: Dict[int, Tuple[int, int]] = {}  # node -> (block id, depth in block)
    blocks: List[Block] = []
    materialized: Set[int] = set()  # values living in registers/SRAM

    for node_id in order:
        node = dag.node(node_id)
        if node.op in _LEAF_OPS:
            materialized.add(node_id)
            continue

        mergeable: List[int] = []  # open child blocks we could absorb
        depths: List[int] = []
        for child in node.children:
            if child in materialized:
                depths.append(0)
                continue
            child_block, child_depth = placement[child]
            if len(parents[child]) > 1:
                # Shared value: close the child's block here.
                materialized.add(child)
                depths.append(0)
                continue
            mergeable.append(child_block)
            depths.append(child_depth)

        new_depth = 1 + max(depths, default=0)
        if new_depth > max_depth:
            # Close every open child block and start a fresh block.
            for child in node.children:
                materialized.add(child)
            mergeable = []
            new_depth = 1

        if mergeable:
            target = blocks[mergeable[0]]
            for other_id in dict.fromkeys(mergeable[1:]):
                if other_id == target.block_id:
                    continue
                other = blocks[other_id]
                target.nodes.extend(other.nodes)
                target.inputs.extend(i for i in other.inputs if i not in target.inputs)
                for moved in other.nodes:
                    placement[moved] = (target.block_id, placement[moved][1])
                other.nodes = []
                other.inputs = []
        else:
            target = Block(block_id=len(blocks))
            blocks.append(target)

        target.nodes.append(node_id)
        for child in node.children:
            if child in materialized and child not in target.inputs:
                target.inputs.append(child)
        target.output = node_id
        target.depth = max(target.depth, new_depth)
        placement[node_id] = (target.block_id, new_depth)

    if dag.root is not None:
        materialized.add(dag.root)

    live = [b for b in blocks if b.nodes]
    _validate_blocks(dag, live, max_depth)
    return live


def _validate_blocks(dag: Dag, blocks: Sequence[Block], max_depth: int) -> None:
    covered: Set[int] = set()
    for block in blocks:
        if block.depth > max_depth:
            raise AssertionError(f"block {block.block_id} exceeds depth budget")
        overlap = covered & set(block.nodes)
        if overlap:
            raise AssertionError(f"nodes in multiple blocks: {sorted(overlap)[:5]}")
        covered |= set(block.nodes)
    interior = {
        node_id
        for node_id in dag.topological_order()
        if dag.node(node_id).op not in _LEAF_OPS
    }
    missing = interior - covered
    if missing:
        raise AssertionError(f"nodes not covered by any block: {sorted(missing)[:5]}")


def block_dependencies(dag: Dag, blocks: Sequence[Block]) -> Dict[int, Set[int]]:
    """block_id → set of block_ids whose outputs it reads."""
    producer: Dict[int, int] = {}
    for block in blocks:
        for node_id in block.nodes:
            producer[node_id] = block.block_id
    deps: Dict[int, Set[int]] = {block.block_id: set() for block in blocks}
    for block in blocks:
        for node_id in block.nodes:
            for child in dag.node(node_id).children:
                child_owner = producer.get(child)
                if child_owner is not None and child_owner != block.block_id:
                    deps[block.block_id].add(child_owner)
    return deps


def topological_block_order(dag: Dag, blocks: Sequence[Block]) -> List[Block]:
    """Blocks sorted so every block follows its producers."""
    deps = block_dependencies(dag, blocks)
    by_id = {block.block_id: block for block in blocks}
    done: Set[int] = set()
    out: List[Block] = []

    def visit(block_id: int, trail: Set[int]) -> None:
        if block_id in done:
            return
        if block_id in trail:
            raise AssertionError("cycle among blocks")
        trail.add(block_id)
        for dep in sorted(deps[block_id]):
            visit(dep, trail)
        trail.discard(block_id)
        done.add(block_id)
        out.append(by_id[block_id])

    for block in blocks:
        visit(block.block_id, set())
    return out
