"""Compiler Step 2: conflict-aware operand→register-bank mapping.

Each materialized value (DAG leaf or block output) is assigned a
register bank; values a block reads in the same issue must sit in
distinct banks, otherwise the issue stalls a cycle per extra conflict.
The mapper greedily places the most-constrained values first (fewest
feasible banks), mirroring the paper's "prioritizes nodes with the
fewest valid options" heuristic, and balances bank occupancy to spread
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.core.compiler.blocks import Block
from repro.core.dag.graph import Dag


@dataclass
class BankAssignment:
    """Result of operand mapping.

    ``bank_of`` maps DAG value id → bank index; ``conflicts`` counts
    same-issue same-bank collisions the greedy pass could not avoid
    (each costs one stall cycle at execution).
    """

    bank_of: Dict[int, int] = field(default_factory=dict)
    num_banks: int = 0
    conflicts: int = 0

    def occupancy(self) -> List[int]:
        counts = [0] * self.num_banks
        for bank in self.bank_of.values():
            counts[bank] += 1
        return counts

    @property
    def max_occupancy(self) -> int:
        return max(self.occupancy(), default=0)


def map_operands_to_banks(
    dag: Dag, blocks: Sequence[Block], num_banks: int
) -> BankAssignment:
    """Assign every materialized value to a register bank.

    Values co-read by a block form a conflict clique; the mapper colors
    the resulting conflict graph greedily, most-constrained first, with
    occupancy-balancing tie-breaks.
    """
    if num_banks < 1:
        raise ValueError("need at least one bank")

    # Conflict graph: values read together should get distinct banks.
    neighbors: Dict[int, Set[int]] = {}
    for block in blocks:
        group = list(dict.fromkeys(block.inputs))
        for value in group:
            neighbors.setdefault(value, set())
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                neighbors[a].add(b)
                neighbors[b].add(a)
    # Block outputs are also register values (written back).
    for block in blocks:
        neighbors.setdefault(block.output, set())

    assignment = BankAssignment(num_banks=num_banks)
    occupancy = [0] * num_banks

    bank_of = assignment.bank_of

    # Most-constrained-first: order by conflict degree descending.
    # Bank choice is argmin over (occupancy, index); the first-wins
    # linear scan reproduces min()'s lexicographic tie-break without a
    # key-lambda call per bank.
    for value in sorted(neighbors, key=lambda v: (-len(neighbors[v]), v)):
        taken = {
            bank_of[n] for n in neighbors[value] if n in bank_of
        }
        bank = -1
        best_occupancy = -1
        for b in range(num_banks):
            if b in taken:
                continue
            count = occupancy[b]
            if bank < 0 or count < best_occupancy:
                bank, best_occupancy = b, count
        if bank < 0:  # every bank conflicts: fall back to least loaded
            bank = 0
            best_occupancy = occupancy[0]
            for b in range(1, num_banks):
                if occupancy[b] < best_occupancy:
                    bank, best_occupancy = b, occupancy[b]
            assignment.conflicts += 1
        bank_of[value] = bank
        occupancy[bank] += 1

    return assignment


def issue_conflicts(assignment: BankAssignment, block: Block) -> int:
    """Stall cycles this block pays for same-bank operand reads."""
    banks = [assignment.bank_of[v] for v in dict.fromkeys(block.inputs)]
    return len(banks) - len(set(banks))
