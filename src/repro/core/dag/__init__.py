"""Unified DAG representation and the three-stage algorithm pipeline.

Stage 1 (:mod:`builders`) converts SAT/FOL, PC and HMM kernels into one
typed DAG IR; Stage 2 (:mod:`pruning`) removes redundant structure
(hidden literals for logic, low-flow edges for probabilistic models);
Stage 3 (:mod:`regularize`) rewrites every node to fan-in ≤ 2 so the
result maps onto REASON's binary tree PEs.  :func:`optimize` runs all
three stages.
"""

from repro.core.dag.graph import (
    Dag,
    DagNode,
    OpType,
    evaluate_dag,
    default_leaf_inputs,
)
from repro.core.dag.builders import (
    cnf_to_dag,
    circuit_to_dag,
    hmm_to_dag,
    dag_to_circuit,
)
from repro.core.dag.pruning import (
    prune_logic_dag,
    prune_circuit_by_flow,
    prune_hmm_by_posterior,
    FlowPruneReport,
)
from repro.core.dag.regularize import regularize_two_input, is_two_input
from repro.core.dag.pipeline import optimize, OptimizationResult

__all__ = [
    "Dag",
    "DagNode",
    "OpType",
    "evaluate_dag",
    "default_leaf_inputs",
    "cnf_to_dag",
    "circuit_to_dag",
    "hmm_to_dag",
    "dag_to_circuit",
    "prune_logic_dag",
    "prune_circuit_by_flow",
    "prune_hmm_by_posterior",
    "FlowPruneReport",
    "regularize_two_input",
    "is_two_input",
    "optimize",
    "OptimizationResult",
]
