"""Stage 2: adaptive DAG pruning (paper Sec. IV-B).

Logic DAGs are pruned through the binary implication graph (hidden
literal / hidden tautology elimination — exact, satisfiability
preserving).  Probabilistic DAGs are pruned by circuit flow: edges whose
cumulative flow over a calibration dataset is smallest are removed, with
the paper's Δ log-likelihood bound reported.  HMMs are pruned by
expected transition usage from forward-backward posteriors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.dag.builders import cnf_to_dag
from repro.core.dag.graph import Dag
from repro.hmm.inference import transition_posteriors
from repro.hmm.model import HMM
from repro.logic.cnf import CNF
from repro.logic.implication_graph import PruneReport, prune_hidden_literals
from repro.pc.circuit import Circuit, CircuitNode, LeafNode, ProductNode, SumNode
from repro.pc.flows import dataset_edge_flows, flow_pruning_bound
from repro.pc.inference import Evidence


@dataclass
class FlowPruneReport:
    """Outcome of flow-based pruning."""

    edges_before: int = 0
    edges_after: int = 0
    nodes_before: int = 0
    nodes_after: int = 0
    log_likelihood_bound: float = 0.0

    @property
    def edge_reduction(self) -> float:
        if self.edges_before == 0:
            return 0.0
        return 1.0 - self.edges_after / self.edges_before


def prune_logic_dag(formula: CNF) -> Tuple[Dag, CNF, PruneReport]:
    """Prune a CNF via its implication graph and rebuild the DAG.

    Returns (pruned DAG, pruned CNF, report).  Exactness comes from the
    underlying hidden-literal elimination: the pruned formula is
    equisatisfiable (indeed equivalent) to the original.
    """
    pruned_cnf, report = prune_hidden_literals(formula)
    dag, _ = cnf_to_dag(pruned_cnf)
    return dag, pruned_cnf, report


def prune_circuit_by_flow(
    circuit: Circuit,
    dataset: Sequence[Evidence],
    keep_fraction: float = 0.8,
    min_children: int = 1,
) -> Tuple[Circuit, FlowPruneReport]:
    """Remove the lowest-flow sum edges of a probabilistic circuit.

    Edges are ranked by cumulative flow F_{n,c}(D); the lowest
    ``1 - keep_fraction`` of sum edges are deleted (each sum keeps at
    least ``min_children`` children).  Surviving weights are
    renormalized.  The report carries the paper's bound
    Δ log L ≤ Σ_pruned F_{n,c}(D)/|D|.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must lie in (0, 1]")
    flows, count = dataset_edge_flows(circuit, dataset)
    if count == 0:
        raise ValueError("flow pruning needs a non-empty calibration dataset")

    sum_edges = sorted(flows.items(), key=lambda kv: kv[1])
    num_to_drop = int(len(sum_edges) * (1.0 - keep_fraction))
    drop_order = [key for key, _ in sum_edges]

    # Respect min_children per sum node while honoring the drop budget.
    children_left: Dict[int, int] = {}
    for node in circuit.topological_order():
        if isinstance(node, SumNode):
            children_left[node.node_id] = len(node.children)
    dropped: set = set()
    bound_mass = 0.0
    for key in drop_order:
        if len(dropped) >= num_to_drop:
            break
        parent_id, _ = key
        if children_left[parent_id] <= min_children:
            continue
        dropped.add(key)
        children_left[parent_id] -= 1
        bound_mass += flows[key]

    report = FlowPruneReport(
        edges_before=circuit.num_edges,
        nodes_before=circuit.num_nodes,
        log_likelihood_bound=flow_pruning_bound(bound_mass, count) if dropped else 0.0,
    )

    rebuilt: Dict[int, CircuitNode] = {}
    for node in circuit.topological_order():
        if isinstance(node, LeafNode):
            rebuilt[node.node_id] = LeafNode(node.variable, node.probabilities.copy())
        elif isinstance(node, ProductNode):
            rebuilt[node.node_id] = ProductNode([rebuilt[c.node_id] for c in node.children])
        elif isinstance(node, SumNode):
            kept_children: List[CircuitNode] = []
            kept_weights: List[float] = []
            for child, weight in zip(node.children, node.weights):
                if (node.node_id, child.node_id) in dropped:
                    continue
                kept_children.append(rebuilt[child.node_id])
                kept_weights.append(float(weight))
            total = sum(kept_weights)
            if total > 0:
                kept_weights = [w / total for w in kept_weights]
            rebuilt[node.node_id] = SumNode(kept_children, kept_weights)
    pruned = Circuit(rebuilt[circuit.root.node_id], dict(circuit.num_states))

    report.edges_after = pruned.num_edges
    report.nodes_after = pruned.num_nodes
    return pruned, report


def prune_hmm_by_posterior(
    hmm: HMM,
    calibration_sequences: Sequence[Sequence[int]],
    threshold_quantile: float = 0.2,
) -> Tuple[HMM, FlowPruneReport]:
    """Zero out transitions with consistently low posterior usage.

    Expected transition usage is accumulated with forward-backward over
    the calibration sequences; transitions below the
    ``threshold_quantile`` of the usage distribution are removed and
    rows renormalized.  Fidelity degrades gracefully because the removed
    mass bounds the joint-likelihood change (paper Sec. IV-B-b).
    """
    if not calibration_sequences:
        raise ValueError("posterior pruning needs calibration sequences")
    S = hmm.num_states
    usage = np.zeros((S, S))
    for observations in calibration_sequences:
        if len(observations) >= 2:
            usage += transition_posteriors(hmm, observations).sum(axis=0)

    nonzero_before = int(np.count_nonzero(hmm.transition))
    positive = usage[hmm.transition > 0]
    if positive.size == 0:
        return hmm, FlowPruneReport(nonzero_before, nonzero_before, S, S)
    cutoff = float(np.quantile(positive, threshold_quantile))

    transition = hmm.transition.copy()
    pruned_mass = 0.0
    for i in range(S):
        for j in range(S):
            if transition[i, j] > 0 and usage[i, j] <= cutoff:
                # Keep at least one outgoing transition per state.
                row_nonzero = np.count_nonzero(transition[i])
                if row_nonzero > 1:
                    pruned_mass += usage[i, j]
                    transition[i, j] = 0.0
    sums = transition.sum(axis=1, keepdims=True)
    transition = np.where(sums > 0, transition / np.where(sums > 0, sums, 1.0), hmm.transition)

    pruned = HMM(hmm.initial.copy(), transition, hmm.emission.copy())
    total_steps = sum(max(len(s) - 1, 0) for s in calibration_sequences)
    report = FlowPruneReport(
        edges_before=nonzero_before,
        edges_after=int(np.count_nonzero(transition)),
        nodes_before=S,
        nodes_after=S,
        log_likelihood_bound=pruned_mass / max(total_steps, 1),
    )
    return pruned, report
