"""The unified DAG intermediate representation (paper Sec. IV-A, Fig. 5).

One typed DAG covers all three kernel families:

* logic (SAT/FOL): LITERAL leaves, OR clause nodes, AND formula nodes;
* probabilistic circuits: LEAF distributions, SUM and PRODUCT nodes
  (SUM edges carry weights);
* HMMs: the unrolled factor graph uses the same SUM/PRODUCT/LEAF ops.

Nodes are atomic reasoning operations, directed edges are data
dependencies, and inference is a bottom-up traversal — exactly the
execution model REASON's compiler schedules onto tree PEs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class OpType(enum.Enum):
    """Atomic reasoning operations."""

    # Logic ops
    LITERAL = "literal"  # payload: signed DIMACS literal
    OR = "or"
    AND = "and"
    NOT = "not"
    # Probabilistic ops
    LEAF = "leaf"  # payload: (variable, probabilities tuple)
    SUM = "sum"  # edge weights on the node
    PRODUCT = "product"
    # Generic named input (used by HMM unrolling for observations)
    INPUT = "input"

    @property
    def is_logic(self) -> bool:
        return self in (OpType.LITERAL, OpType.OR, OpType.AND, OpType.NOT)

    @property
    def is_probabilistic(self) -> bool:
        return self in (OpType.LEAF, OpType.SUM, OpType.PRODUCT)


@dataclass
class DagNode:
    """A node in the unified DAG.

    ``payload`` depends on the op: a literal for LITERAL, a
    (variable, probabilities) tuple for LEAF, a label for INPUT.
    ``weights`` parallels ``children`` on SUM nodes.

    ``children`` must not be mutated after the node is added to a
    :class:`Dag`: the DAG memoizes traversal orders and only
    invalidates them on :meth:`Dag.add` / :meth:`Dag.set_root`.  Build
    a new node (or a new DAG) instead of editing edges in place.
    """

    op: OpType
    children: List[int] = field(default_factory=list)
    payload: object = None
    weights: Optional[List[float]] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.op is OpType.SUM and self.weights is None:
            self.weights = [1.0] * len(self.children)
        if self.weights is not None and len(self.weights) != len(self.children):
            raise ValueError("weights must parallel children")

    @property
    def fan_in(self) -> int:
        return len(self.children)


class Dag:
    """A rooted DAG of :class:`DagNode` addressed by integer ids."""

    def __init__(self) -> None:
        self._nodes: Dict[int, DagNode] = {}
        self._next_id = 0
        self.root: Optional[int] = None
        # Memoized topological orders, invalidated on any mutation.
        self._topo_cache: Dict[Optional[Tuple[int, ...]], List[int]] = {}

    def add(self, node: DagNode) -> int:
        for child in node.children:
            if child not in self._nodes:
                raise KeyError(f"child {child} not in DAG")
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = node
        if self._topo_cache:
            self._topo_cache.clear()
        return node_id

    def add_op(
        self,
        op: OpType,
        children: Sequence[int] = (),
        payload: object = None,
        weights: Optional[Sequence[float]] = None,
        label: str = "",
    ) -> int:
        return self.add(
            DagNode(op, list(children), payload, list(weights) if weights else None, label)
        )

    def node(self, node_id: int) -> DagNode:
        return self._nodes[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def set_root(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id} not in DAG")
        if node_id != self.root and self._topo_cache:
            self._topo_cache.clear()
        self.root = node_id

    def ids(self) -> List[int]:
        return list(self._nodes)

    def items(self) -> Iterator[Tuple[int, DagNode]]:
        return iter(self._nodes.items())

    # --------------------------------------------------------------- queries

    def topological_order(self, roots: Optional[Iterable[int]] = None) -> List[int]:
        """Children-before-parents order of nodes reachable from roots.

        Defaults to the DAG's root; raises if no root is set.  Orders
        are memoized per roots tuple and invalidated when the DAG
        mutates through :meth:`add`/:meth:`set_root`, so the many
        traversal-hungry consumers (compiler passes, pruning, footprint
        queries) pay the walk once.  In-place edits of a node's
        ``children`` list are not tracked (see :class:`DagNode`).
        """
        if roots is None:
            if self.root is None:
                raise ValueError("DAG has no root")
            key: Optional[Tuple[int, ...]] = None
            roots = [self.root]
        else:
            roots = list(roots)
            key = tuple(roots)
        cached = self._topo_cache.get(key)
        if cached is not None:
            return list(cached)
        order: List[int] = []
        state: Dict[int, int] = {}  # 0 visiting, 1 done
        stack: List[Tuple[int, bool]] = [(r, False) for r in roots]
        while stack:
            node_id, processed = stack.pop()
            if processed:
                state[node_id] = 1
                order.append(node_id)
                continue
            if node_id in state:
                if state[node_id] == 0:
                    raise ValueError("cycle detected in DAG")
                continue
            state[node_id] = 0
            stack.append((node_id, True))
            for child in self._nodes[node_id].children:
                if state.get(child) != 1:
                    if state.get(child) == 0:
                        raise ValueError("cycle detected in DAG")
                    stack.append((child, False))
        # Deduplicate while preserving order (diamond reconvergence).
        seen: set = set()
        unique: List[int] = []
        for node_id in order:
            if node_id not in seen:
                seen.add(node_id)
                unique.append(node_id)
        self._topo_cache[key] = unique
        return list(unique)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(n.children) for n in self._nodes.values())

    def reachable_size(self) -> int:
        """Nodes reachable from the root (live size after pruning)."""
        return len(self.topological_order())

    def depth(self) -> int:
        """Longest path (in edges) from any leaf to the root."""
        depths: Dict[int, int] = {}
        for node_id in self.topological_order():
            node = self._nodes[node_id]
            if not node.children:
                depths[node_id] = 0
            else:
                depths[node_id] = 1 + max(depths[c] for c in node.children)
        return depths[self.root] if self.root is not None else 0

    def max_fan_in(self) -> int:
        nodes = self._nodes
        return max(
            (len(nodes[i].children) for i in self.topological_order()), default=0
        )

    def parents_map(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {i: [] for i in self._nodes}
        for node_id, node in self._nodes.items():
            for child in node.children:
                out[child].append(node_id)
        return out

    def op_histogram(self) -> Dict[OpType, int]:
        hist: Dict[OpType, int] = {}
        for node_id in self.topological_order():
            op = self._nodes[node_id].op
            hist[op] = hist.get(op, 0) + 1
        return hist

    def memory_footprint(self) -> int:
        """Abstract memory cost in words: one per node plus one per edge
        plus one per sum weight — the unit Table IV's memory-reduction
        percentages are measured in."""
        live = self.topological_order()
        words = 0
        for node_id in live:
            node = self._nodes[node_id]
            words += 1 + len(node.children)
            if node.weights is not None:
                words += len(node.weights)
        return words

    def compact(self) -> "Dag":
        """Copy keeping only nodes reachable from the root, renumbered."""
        if self.root is None:
            raise ValueError("DAG has no root")
        live = self.topological_order()
        mapping: Dict[int, int] = {}
        out = Dag()
        for node_id in live:
            node = self._nodes[node_id]
            mapping[node_id] = out.add_op(
                node.op,
                [mapping[c] for c in node.children],
                node.payload,
                node.weights,
                node.label,
            )
        out.set_root(mapping[self.root])
        return out


def default_leaf_inputs(dag: Dag, literal_values: Optional[Dict[int, bool]] = None) -> Dict[int, float]:
    """Default input map for a DAG's leaf nodes.

    Probabilistic LEAF nodes get their marginalized payload mass
    (evaluating the DAG then yields the partition function / joint
    likelihood); LITERAL nodes get the truth value from
    ``literal_values`` (DIMACS variable → bool) or 0.0.
    """
    inputs: Dict[int, float] = {}
    for node_id in dag.topological_order():
        node = dag.node(node_id)
        if node.op is OpType.LEAF and node.payload is not None:
            _, probabilities = node.payload
            inputs[node_id] = float(sum(probabilities))
        elif node.op is OpType.LITERAL:
            if literal_values is not None:
                lit = node.payload
                value = literal_values.get(abs(lit))
                inputs[node_id] = 1.0 if value is not None and value == (lit > 0) else 0.0
            else:
                inputs[node_id] = 0.0
        elif node.op is OpType.INPUT:
            inputs[node_id] = 0.0
    return inputs


def evaluate_dag(dag: Dag, inputs: Dict[int, float]) -> Dict[int, float]:
    """Reference bottom-up evaluation of a unified DAG.

    ``inputs`` maps node_id → value for LITERAL/LEAF/INPUT nodes;
    missing logic leaves default to 0 (false) and missing probabilistic
    leaves to their marginalized mass when the payload provides one.
    Logic ops use Boolean semantics over {0.0, 1.0}; SUM/PRODUCT use
    arithmetic semantics.  Returns values for every reachable node.
    """
    values: Dict[int, float] = {}
    for node_id in dag.topological_order():
        node = dag.node(node_id)
        if node.op in (OpType.LITERAL, OpType.LEAF, OpType.INPUT):
            if node_id in inputs:
                values[node_id] = float(inputs[node_id])
            elif node.op is OpType.LEAF and node.payload is not None:
                _, probabilities = node.payload
                values[node_id] = float(sum(probabilities))
            else:
                values[node_id] = 0.0
        elif node.op is OpType.NOT:
            values[node_id] = 1.0 - values[node.children[0]]
        elif node.op is OpType.OR:
            values[node_id] = 1.0 if any(values[c] > 0 for c in node.children) else 0.0
        elif node.op is OpType.AND:
            values[node_id] = 1.0 if all(values[c] > 0 for c in node.children) else 0.0
        elif node.op is OpType.PRODUCT:
            out = 1.0
            for child in node.children:
                out *= values[child]
            values[node_id] = out
        elif node.op is OpType.SUM:
            assert node.weights is not None
            values[node_id] = sum(
                w * values[c] for w, c in zip(node.weights, node.children)
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {node.op}")
    return values
