"""Stage 1: kernel → unified DAG builders (paper Sec. IV-A).

* CNF: literal leaves → OR clause nodes → one AND formula root, with
  watch-list metadata preserved in node labels.
* PC: structural isomorphism (leaves/sums/products map one-to-one).
* HMM: the sequence is unrolled over time steps; each step multiplies
  transition-weighted prior state beliefs by emission factors — the
  forward recurrence as a SUM/PRODUCT DAG.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


from repro.hmm.model import HMM
from repro.logic.cnf import CNF
from repro.core.dag.graph import Dag, OpType
from repro.pc.circuit import (
    Circuit,
    CircuitNode,
    LeafNode,
    ProductNode,
    SumNode,
)


def cnf_to_dag(formula: CNF) -> Tuple[Dag, Dict[int, int]]:
    """CNF → three-layer logic DAG.

    Returns the DAG and a map literal → LITERAL node id.  Shared literal
    leaves give the DAG its reconvergent structure; the first two
    literals of each clause are tagged as watched in the clause label
    (the metadata REASON's WLs unit indexes).
    """
    dag = Dag()
    literal_nodes: Dict[int, int] = {}

    def literal_node(lit: int) -> int:
        if lit not in literal_nodes:
            literal_nodes[lit] = dag.add_op(
                OpType.LITERAL, payload=lit, label=f"lit({lit})"
            )
        return literal_nodes[lit]

    clause_ids: List[int] = []
    for index, clause in enumerate(formula.clauses):
        children = [literal_node(l) for l in clause.literals]
        watched = ",".join(str(l) for l in clause.literals[:2])
        clause_ids.append(
            dag.add_op(OpType.OR, children, label=f"C{index}[watch:{watched}]")
        )
    root = dag.add_op(OpType.AND, clause_ids, label="formula")
    dag.set_root(root)
    return dag, literal_nodes


def circuit_to_dag(circuit: Circuit) -> Tuple[Dag, Dict[int, int]]:
    """PC → DAG (structure-preserving).

    Returns the DAG and a map circuit node_id → DAG node id.
    """
    dag = Dag()
    mapping: Dict[int, int] = {}
    for node in circuit.topological_order():
        children = [mapping[c.node_id] for c in node.children]
        if isinstance(node, LeafNode):
            mapping[node.node_id] = dag.add_op(
                OpType.LEAF,
                payload=(node.variable, tuple(float(p) for p in node.probabilities)),
                label=f"X{node.variable}",
            )
        elif isinstance(node, ProductNode):
            mapping[node.node_id] = dag.add_op(OpType.PRODUCT, children)
        elif isinstance(node, SumNode):
            mapping[node.node_id] = dag.add_op(
                OpType.SUM, children, weights=[float(w) for w in node.weights]
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown circuit node {node!r}")
    dag.set_root(mapping[circuit.root.node_id])
    return dag, mapping


def dag_to_circuit(dag: Dag) -> Circuit:
    """Inverse of :func:`circuit_to_dag` for probabilistic DAGs.

    Raises ``ValueError`` if the DAG contains logic ops.
    """
    rebuilt: Dict[int, CircuitNode] = {}
    for node_id in dag.topological_order():
        node = dag.node(node_id)
        if node.op is OpType.LEAF:
            variable, probabilities = node.payload  # type: ignore[misc]
            rebuilt[node_id] = LeafNode(variable, list(probabilities))
        elif node.op is OpType.PRODUCT:
            rebuilt[node_id] = ProductNode([rebuilt[c] for c in node.children])
        elif node.op is OpType.SUM:
            assert node.weights is not None
            rebuilt[node_id] = SumNode(
                [rebuilt[c] for c in node.children], list(node.weights)
            )
        else:
            raise ValueError(f"not a probabilistic DAG: contains {node.op}")
    assert dag.root is not None
    return Circuit(rebuilt[dag.root])


def hmm_to_dag(
    hmm: HMM,
    observations: Sequence[int],
    prune_transition_below: float = 0.0,
) -> Dag:
    """Unroll an HMM over an observation sequence into a SUM/PRODUCT DAG.

    The DAG computes the joint likelihood p(x_1:T): layer t holds one
    node per hidden state s with value
    ``alpha_t(s) = emission[s, x_t] * Σ_s' transition[s', s] · alpha_{t-1}(s')``
    and the root sums the last layer.  Emission factors are LEAF nodes
    (observations baked into leaf payloads); transitions appear as SUM
    edge weights, so transition edges below ``prune_transition_below``
    can simply be omitted (used by HMM pruning experiments).
    """
    T = len(observations)
    if T == 0:
        raise ValueError("cannot unroll an empty observation sequence")
    S = hmm.num_states
    dag = Dag()

    def emission_leaf(t: int, s: int) -> int:
        probability = float(hmm.emission[s, observations[t]])
        return dag.add_op(
            OpType.LEAF,
            payload=(t * S + s, (probability,)),
            label=f"emit[t={t},s={s}]",
        )

    # Layer 0: alpha_0(s) = initial[s] * emission[s, x_0].
    previous: List[int] = []
    for s in range(S):
        leaf = emission_leaf(0, s)
        scaled = dag.add_op(
            OpType.SUM, [leaf], weights=[float(hmm.initial[s])], label=f"init[s={s}]"
        )
        previous.append(scaled)

    for t in range(1, T):
        current: List[int] = []
        for s in range(S):
            incoming: List[int] = []
            weights: List[float] = []
            for s_prev in range(S):
                w = float(hmm.transition[s_prev, s])
                if w <= prune_transition_below:
                    continue
                incoming.append(previous[s_prev])
                weights.append(w)
            if not incoming:
                # State unreachable after pruning: contributes zero.
                zero = dag.add_op(OpType.LEAF, payload=(-1, (0.0,)), label="zero")
                current.append(zero)
                continue
            mixed = dag.add_op(
                OpType.SUM, incoming, weights=weights, label=f"trans[t={t},s={s}]"
            )
            emitted = dag.add_op(
                OpType.PRODUCT, [mixed, emission_leaf(t, s)], label=f"alpha[t={t},s={s}]"
            )
            current.append(emitted)
        previous = current

    root = dag.add_op(OpType.SUM, previous, weights=[1.0] * len(previous), label="joint")
    dag.set_root(root)
    return dag
