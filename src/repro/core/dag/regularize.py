"""Stage 3: two-input DAG regularization (paper Sec. IV-C).

Nodes with fan-in > 2 are recursively decomposed into balanced binary
trees of two-input intermediate nodes of the same op.  SUM nodes push
their edge weights into the first binary layer (each original weighted
edge becomes a weight-1 internal edge below a weighted leaf-level edge),
preserving the computed function exactly.  The canonical form gives
every kernel the same shape as REASON's binary tree PEs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.dag.graph import Dag, OpType

# Ops where an n-ary node equals a balanced tree of 2-ary nodes.
_ASSOCIATIVE = {OpType.OR, OpType.AND, OpType.SUM, OpType.PRODUCT}


def is_two_input(dag: Dag) -> bool:
    """True when every reachable node has fan-in ≤ 2."""
    return dag.max_fan_in() <= 2


def regularize_two_input(dag: Dag) -> Dag:
    """Return an equivalent DAG whose every node has fan-in ≤ 2.

    The rewrite is semantics-preserving for associative ops; a SUM node
    first multiplies each child by its weight (expressed as a unary
    weighted SUM when the weight differs from 1), then reduces with a
    balanced tree of unweighted two-input SUMs, keeping depth at
    ``ceil(log2 fan_in)`` extra levels.
    """
    out = Dag()
    mapping: Dict[int, int] = {}

    def balanced_reduce(op: OpType, children: List[int], label: str) -> int:
        if len(children) == 1:
            return children[0]
        if len(children) == 2:
            weights = [1.0, 1.0] if op is OpType.SUM else None
            return out.add_op(op, children, weights=weights, label=label)
        mid = (len(children) + 1) // 2
        left = balanced_reduce(op, children[:mid], label)
        right = balanced_reduce(op, children[mid:], label)
        weights = [1.0, 1.0] if op is OpType.SUM else None
        return out.add_op(op, [left, right], weights=weights, label=label)

    for node_id in dag.topological_order():
        node = dag.node(node_id)
        children = [mapping[c] for c in node.children]
        if node.fan_in <= 2 or node.op not in _ASSOCIATIVE:
            mapping[node_id] = out.add_op(
                node.op, children, node.payload, node.weights, node.label
            )
            continue
        if node.op is OpType.SUM:
            assert node.weights is not None
            scaled: List[int] = []
            for child, weight in zip(children, node.weights):
                if weight == 1.0:
                    scaled.append(child)
                else:
                    scaled.append(
                        out.add_op(
                            OpType.SUM,
                            [child],
                            weights=[weight],
                            label=f"{node.label}·w",
                        )
                    )
            mapping[node_id] = balanced_reduce(OpType.SUM, scaled, node.label)
        else:
            mapping[node_id] = balanced_reduce(node.op, children, node.label)

    assert dag.root is not None
    out.set_root(mapping[dag.root])
    return out
