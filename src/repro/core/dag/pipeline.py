"""The complete Stage 1→2→3 algorithm-optimization pipeline.

`optimize` is the offline flow the paper describes at the end of
Sec. IV-C: construct the unified DAG, prune adaptively, regularize to
two-input form, and report memory savings — the artifact handed to the
compiler for binary generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.dag.builders import circuit_to_dag, cnf_to_dag, hmm_to_dag
from repro.core.dag.graph import Dag
from repro.core.dag.pruning import (
    prune_circuit_by_flow,
    prune_hmm_by_posterior,
    prune_logic_dag,
)
from repro.core.dag.regularize import regularize_two_input
from repro.hmm.model import HMM
from repro.logic.cnf import CNF
from repro.pc.circuit import Circuit


@dataclass
class OptimizationResult:
    """Output of the three-stage pipeline."""

    dag: Dag
    memory_before: int
    memory_after: int
    stage_report: object = None
    pruned_model: object = None  # pruned CNF / Circuit / HMM

    @property
    def memory_reduction(self) -> float:
        """Fraction of the unified DAG's footprint removed (Table IV's
        "Memory↓" column)."""
        if self.memory_before == 0:
            return 0.0
        return 1.0 - self.memory_after / self.memory_before


def optimize(
    kernel: Union[CNF, Circuit, HMM],
    calibration: Optional[Sequence] = None,
    keep_fraction: float = 0.8,
    regularize: bool = True,
) -> OptimizationResult:
    """Run unification → adaptive pruning → two-input regularization.

    ``calibration`` supplies the data the pruning stage needs for
    probabilistic kernels: a list of evidence dicts for circuits, a list
    of observation sequences for HMMs (for HMMs the first calibration
    sequence also defines the unroll length).  Logic kernels prune
    exactly and need no calibration.
    """
    if isinstance(kernel, CNF):
        baseline_dag, _ = cnf_to_dag(kernel)
        memory_before = baseline_dag.memory_footprint()
        pruned_dag, pruned_cnf, report = prune_logic_dag(kernel)
        final = regularize_two_input(pruned_dag) if regularize else pruned_dag
        return OptimizationResult(
            final, memory_before, pruned_dag.memory_footprint(), report, pruned_cnf
        )

    if isinstance(kernel, Circuit):
        if not calibration:
            raise ValueError("circuit pruning needs calibration evidence")
        baseline_dag, _ = circuit_to_dag(kernel)
        memory_before = baseline_dag.memory_footprint()
        pruned_circuit, report = prune_circuit_by_flow(
            kernel, list(calibration), keep_fraction=keep_fraction
        )
        pruned_dag, _ = circuit_to_dag(pruned_circuit)
        final = regularize_two_input(pruned_dag) if regularize else pruned_dag
        return OptimizationResult(
            final, memory_before, pruned_dag.memory_footprint(), report, pruned_circuit
        )

    if isinstance(kernel, HMM):
        if not calibration:
            raise ValueError("HMM pruning needs calibration sequences")
        sequences = [list(s) for s in calibration]
        baseline_dag = hmm_to_dag(kernel, sequences[0])
        memory_before = baseline_dag.memory_footprint()
        pruned_hmm, report = prune_hmm_by_posterior(
            hmm=kernel,
            calibration_sequences=sequences,
            threshold_quantile=1.0 - keep_fraction,
        )
        pruned_dag = hmm_to_dag(pruned_hmm, sequences[0], prune_transition_below=0.0)
        final = regularize_two_input(pruned_dag) if regularize else pruned_dag
        return OptimizationResult(
            final, memory_before, pruned_dag.memory_footprint(), report, pruned_hmm
        )

    raise TypeError(f"unsupported kernel type: {type(kernel).__name__}")
