"""Two-level execution pipeline and end-to-end latency models
(paper Sec. VI-C, Fig. 9 top).

Level 1 (GPU↔REASON): while REASON processes the symbolic stage of task
N, the GPU runs the neural stage of task N+1 — a classic two-stage
pipeline whose steady-state throughput is the max of the stage times,
not their sum.  Level 2 (intra-REASON) is modeled inside the
accelerator's replay (pipelined broadcast/reduction).

The end-to-end helpers encode the evaluation's comparison structure:

* a baseline device runs neural and symbolic serially, plus a coupling
  overhead for discrete CPU+GPU systems (the paper measures >15%
  inter-device transfer cost);
* the REASON system runs the neural stage on its host GPU (optionally
  with the orthogonal LLM optimizations of Sec. VII-C) and overlaps the
  symbolic stage on REASON through shared memory (no transfer cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.device import DeviceModel, KernelProfile
from repro.core.system.runner import ReasonTiming


@dataclass
class PipelineResult:
    """Latency accounting for a batch of tasks."""

    total_s: float
    neural_s: float
    symbolic_s: float
    overlap_saved_s: float = 0.0

    @property
    def symbolic_share(self) -> float:
        busy = self.neural_s + self.symbolic_s
        return 0.0 if busy == 0 else self.symbolic_s / busy

    def to_dict(self) -> dict:
        return {
            "total_s": self.total_s,
            "neural_s": self.neural_s,
            "symbolic_s": self.symbolic_s,
            "overlap_saved_s": self.overlap_saved_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineResult":
        return cls(
            total_s=float(data["total_s"]),
            neural_s=float(data["neural_s"]),
            symbolic_s=float(data["symbolic_s"]),
            overlap_saved_s=float(data.get("overlap_saved_s", 0.0)),
        )


class TwoLevelPipeline:
    """Task-level GPU/REASON overlap simulator."""

    def __init__(self, handoff_s: float = 2e-6):
        # Shared-memory flag polling: microseconds, not milliseconds.
        self.handoff_s = handoff_s

    def run(
        self,
        neural_times_s: Sequence[float],
        symbolic_times_s: Sequence[float],
        pipelined: bool = True,
    ) -> PipelineResult:
        """Schedule N tasks through the two stages.

        ``pipelined=False`` is the ablation: strictly serial execution
        of each task's neural then symbolic stage.
        """
        if len(neural_times_s) != len(symbolic_times_s):
            raise ValueError("need one symbolic time per neural time")
        neural_total = float(sum(neural_times_s))
        symbolic_total = float(sum(symbolic_times_s))
        serial = neural_total + symbolic_total + self.handoff_s * len(neural_times_s)
        if not pipelined or not neural_times_s:
            return PipelineResult(serial, neural_total, symbolic_total, 0.0)
        gpu_free = 0.0
        reason_free = 0.0
        finish = 0.0
        for neural, symbolic in zip(neural_times_s, symbolic_times_s):
            neural_done = gpu_free + neural
            gpu_free = neural_done
            start = max(neural_done + self.handoff_s, reason_free)
            finish = start + symbolic
            reason_free = finish
        return PipelineResult(finish, neural_total, symbolic_total, serial - finish)


def baseline_end_to_end(
    device: DeviceModel,
    neural_profiles: Sequence[KernelProfile],
    symbolic_profiles: Sequence[KernelProfile],
    coupled_devices: bool = False,
    symbolic_scale: float = 1.0,
) -> PipelineResult:
    """Serial neural+symbolic execution on one baseline device.

    ``coupled_devices`` adds the measured >15% inter-device transfer
    overhead of CPU+GPU systems.  ``symbolic_scale`` lifts the synthetic
    miniature instance to the paper's task size (see EXPERIMENTS.md
    calibration notes).
    """
    neural_s = device.run(neural_profiles)
    symbolic_s = device.run(symbolic_profiles) * symbolic_scale
    total = neural_s + symbolic_s
    if coupled_devices:
        total *= 1.15
    return PipelineResult(total, neural_s, symbolic_s)


def reason_end_to_end(
    host_gpu: DeviceModel,
    neural_profiles: Sequence[KernelProfile],
    reason_timing: ReasonTiming,
    symbolic_scale: float = 1.0,
    num_tasks: int = 8,
    llm_optimization_speedup: float = 1.0,
    pipelined: bool = True,
) -> PipelineResult:
    """The REASON system: GPU neural stage overlapped with REASON.

    Per-task latency in steady state approaches
    ``max(neural / llm_opt, symbolic_on_reason)``; the reported total is
    for ``num_tasks`` tasks including pipeline fill, divided back to a
    per-task figure by the caller when needed.
    """
    neural_s = host_gpu.run(neural_profiles) / llm_optimization_speedup
    symbolic_s = reason_timing.seconds * symbolic_scale
    pipeline = TwoLevelPipeline()
    result = pipeline.run(
        [neural_s] * num_tasks, [symbolic_s] * num_tasks, pipelined=pipelined
    )
    per_task = PipelineResult(
        result.total_s / num_tasks,
        neural_s,
        symbolic_s,
        result.overlap_saved_s / num_tasks,
    )
    return per_task
