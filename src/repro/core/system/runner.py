"""Executing workload kernels on the REASON accelerator model.

.. deprecated::
    This module is a compatibility shim.  The optimize → compile →
    execute flow (including the per-kernel-type dispatch that used to
    live here) moved behind :class:`repro.api.ReasonSession`, which
    adds pluggable backends, a compile cache, and batched execution.
    ``time_kernel_on_reason`` keeps its exact signature and semantics
    for existing call sites but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.arch.config import ArchConfig, DEFAULT_CONFIG
from repro.hmm.model import HMM
from repro.logic.cnf import CNF
from repro.pc.circuit import Circuit


@dataclass
class ReasonTiming:
    """Cost of one kernel execution on REASON."""

    cycles: int
    seconds: float
    energy_j: float
    power_w: float
    utilization: float = 0.0

    def scaled(self, factor: float) -> "ReasonTiming":
        """Scale to the paper's full task size (documented calibration:
        synthetic instances are miniatures of the benchmark tasks)."""
        return ReasonTiming(
            cycles=int(self.cycles * factor),
            seconds=self.seconds * factor,
            energy_j=self.energy_j * factor,
            power_w=self.power_w,
            utilization=self.utilization,
        )

    @classmethod
    def from_report(cls, report) -> "ReasonTiming":
        """Build from a :class:`repro.api.ExecutionReport`."""
        return cls(
            cycles=report.cycles,
            seconds=report.seconds,
            energy_j=report.energy_j,
            power_w=report.power_w,
            utilization=report.utilization,
        )


def time_kernel_on_reason(
    kernel: Union[CNF, Circuit, HMM],
    config: ArchConfig = DEFAULT_CONFIG,
    calibration: Optional[Sequence] = None,
    apply_algorithm_optimizations: bool = True,
    queries: int = 1,
    hmm_observations: Optional[Sequence[int]] = None,
) -> ReasonTiming:
    """Deprecated: run one kernel on the accelerator and report costs.

    Equivalent to ``ReasonSession(config).run(kernel, ...)`` with the
    ``reason`` backend; use the session directly to get compile caching,
    batch scheduling, and alternative backends.
    """
    warnings.warn(
        "time_kernel_on_reason is deprecated; use repro.api.ReasonSession.run",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import ReasonSession

    report = ReasonSession(config=config, cache=False).run(
        kernel,
        backend="reason",
        queries=queries,
        optimize=apply_algorithm_optimizations,
        calibration=calibration,
        hmm_observations=hmm_observations,
    )
    return ReasonTiming.from_report(report)
