"""Executing workload kernels on the REASON accelerator model.

Workload ``reason_kernel`` outputs are heterogeneous (CNF, Circuit,
HMM); this module normalizes them: logic kernels replay on the symbolic
engine, probabilistic kernels run the optimize→compile→execute path.
Returned timings are per-query cycles/seconds plus the energy model for
power/energy reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro.core.arch.accelerator import ReasonAccelerator
from repro.core.arch.config import ArchConfig, DEFAULT_CONFIG
from repro.core.arch.energy import EnergyModel
from repro.core.arch.tree_pe import PEMode
from repro.core.compiler import compile_dag
from repro.core.dag import circuit_to_dag, hmm_to_dag, optimize
from repro.core.dag.graph import default_leaf_inputs
from repro.hmm.model import HMM
from repro.logic.cnf import CNF
from repro.pc.circuit import Circuit


@dataclass
class ReasonTiming:
    """Cost of one kernel execution on REASON."""

    cycles: int
    seconds: float
    energy_j: float
    power_w: float
    utilization: float = 0.0

    def scaled(self, factor: float) -> "ReasonTiming":
        """Scale to the paper's full task size (documented calibration:
        synthetic instances are miniatures of the benchmark tasks)."""
        return ReasonTiming(
            cycles=int(self.cycles * factor),
            seconds=self.seconds * factor,
            energy_j=self.energy_j * factor,
            power_w=self.power_w,
            utilization=self.utilization,
        )


def time_kernel_on_reason(
    kernel: Union[CNF, Circuit, HMM],
    config: ArchConfig = DEFAULT_CONFIG,
    calibration: Optional[Sequence] = None,
    apply_algorithm_optimizations: bool = True,
    queries: int = 1,
    hmm_observations: Optional[Sequence[int]] = None,
) -> ReasonTiming:
    """Run one workload kernel on the accelerator and report costs.

    With ``apply_algorithm_optimizations`` the Stage 1-3 pipeline
    (unify, prune, regularize) runs first when calibration data is
    available — the full REASON stack; otherwise the raw kernel
    compiles directly (the "w/o algorithm optimization" ablation).
    """
    accelerator = ReasonAccelerator(config)

    if isinstance(kernel, CNF):
        working = kernel
        if apply_algorithm_optimizations:
            working = optimize(kernel).pruned_model
        trace, _ = accelerator.run_symbolic(working)
        cycles = max(trace.cycles, 1) * queries
        energy = accelerator.energy.total_energy_j() * queries
        power = accelerator.energy.average_power_w(cycles)
        return ReasonTiming(cycles, cycles * config.cycle_time_s, energy, power)

    if isinstance(kernel, Circuit):
        if apply_algorithm_optimizations and calibration:
            dag = optimize(kernel, calibration=calibration).dag
        else:
            dag, _ = circuit_to_dag(kernel)
        program, _ = compile_dag(dag, config)
        report = accelerator.run_program(
            program, default_leaf_inputs(program.dag), mode=PEMode.PROBABILISTIC
        )
        cycles = max(report.cycles, 1) * queries
        return ReasonTiming(
            cycles,
            cycles * config.cycle_time_s,
            report.energy_j * queries,
            report.power_w,
            report.utilization,
        )

    if isinstance(kernel, HMM):
        observations = list(hmm_observations or range(min(8, kernel.num_observations)))
        observations = [o % kernel.num_observations for o in observations]
        if apply_algorithm_optimizations and calibration:
            dag = optimize(kernel, calibration=calibration).dag
        else:
            dag = hmm_to_dag(kernel, observations)
        program, _ = compile_dag(dag, config)
        report = accelerator.run_program(
            program, default_leaf_inputs(program.dag), mode=PEMode.PROBABILISTIC
        )
        cycles = max(report.cycles, 1) * queries
        return ReasonTiming(
            cycles,
            cycles * config.cycle_time_s,
            report.energy_j * queries,
            report.power_w,
            report.utilization,
        )

    raise TypeError(f"unsupported kernel type: {type(kernel).__name__}")
