"""Shard-level composition of the two-level pipeline.

The serving layer (:class:`repro.api.service.ReasonService`) runs N
accelerator shards, each an independent GPU↔REASON instance executing
the requests routed to it.  Within a shard, tasks overlap exactly as
:class:`~repro.core.system.pipeline.TwoLevelPipeline` models (symbolic
stage of task K overlaps the neural stage of task K+1); across shards,
execution is concurrent, so the service makespan is the *slowest
shard's* pipelined makespan.  Composing per-shard makespans this way —
instead of dividing wall time by N — keeps service throughput numbers
faithful to the paper's overlap model: pipeline fill and stage
imbalance still cost what Fig. 9 says they cost, once per shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.system.pipeline import PipelineResult, TwoLevelPipeline

#: One task's (neural_s, symbolic_s) stage times.
StageTimes = Tuple[float, float]


@dataclass
class ShardComposition:
    """Makespan accounting for one workload split across shards.

    ``total_s`` is the service makespan (max over concurrent shards);
    ``single_shard_s`` is the same workload pipelined through one shard
    (the scaling baseline); ``serial_s`` strictly serializes every
    stage (the no-overlap ablation).
    """

    per_shard: List[PipelineResult]
    total_s: float
    single_shard_s: float
    serial_s: float

    @property
    def num_shards(self) -> int:
        return len(self.per_shard)

    @property
    def neural_s(self) -> float:
        return sum(result.neural_s for result in self.per_shard)

    @property
    def symbolic_s(self) -> float:
        return sum(result.symbolic_s for result in self.per_shard)

    @property
    def speedup(self) -> float:
        """Throughput gain of sharding vs one shard (same overlap model)."""
        return self.single_shard_s / self.total_s if self.total_s > 0 else 1.0

    @property
    def overlap_saved_s(self) -> float:
        """What pipelining saved vs strictly serial, at the service level."""
        return max(self.serial_s - self.total_s, 0.0)

    def throughput_rps(self, num_tasks: int) -> float:
        """Modeled requests/second for ``num_tasks`` tasks."""
        return num_tasks / self.total_s if self.total_s > 0 else 0.0

    @classmethod
    def empty(cls, num_shards: int = 0) -> "ShardComposition":
        """The composition of a service that has completed nothing yet:
        one zero pipeline per shard, zero makespan everywhere.  What
        :meth:`~repro.api.service.ReasonService.stats` reports before
        the first request finishes."""
        return cls(
            per_shard=[
                PipelineResult(0.0, 0.0, 0.0, 0.0) for _ in range(num_shards)
            ],
            total_s=0.0,
            single_shard_s=0.0,
            serial_s=0.0,
        )

    def to_dict(self) -> dict:
        return {
            "per_shard": [result.to_dict() for result in self.per_shard],
            "total_s": self.total_s,
            "single_shard_s": self.single_shard_s,
            "serial_s": self.serial_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardComposition":
        return cls(
            per_shard=[
                PipelineResult.from_dict(entry) for entry in data["per_shard"]
            ],
            total_s=float(data["total_s"]),
            single_shard_s=float(data["single_shard_s"]),
            serial_s=float(data["serial_s"]),
        )


def compose_shard_makespans(
    shard_tasks: Sequence[Sequence[StageTimes]],
    handoff_s: Optional[float] = None,
    pipelined: bool = True,
) -> ShardComposition:
    """Compose per-shard task lists into service-level makespans.

    ``shard_tasks[i]`` is shard *i*'s admitted work in execution order,
    each entry a ``(neural_s, symbolic_s)`` pair.  Every shard runs its
    own :class:`TwoLevelPipeline`; the single-shard baseline threads the
    concatenated workload through one pipeline instance.
    """
    pipeline = TwoLevelPipeline() if handoff_s is None else TwoLevelPipeline(handoff_s)
    per_shard = []
    for tasks in shard_tasks:
        neural = [task[0] for task in tasks]
        symbolic = [task[1] for task in tasks]
        per_shard.append(pipeline.run(neural, symbolic, pipelined=pipelined))
    all_tasks = [task for tasks in shard_tasks for task in tasks]
    all_neural = [task[0] for task in all_tasks]
    all_symbolic = [task[1] for task in all_tasks]
    single = pipeline.run(all_neural, all_symbolic, pipelined=pipelined)
    serial = pipeline.run(all_neural, all_symbolic, pipelined=False)
    total_s = max((result.total_s for result in per_shard), default=0.0)
    return ShardComposition(
        per_shard=per_shard,
        total_s=total_s,
        single_shard_s=single.total_s,
        serial_s=serial.total_s,
    )
