"""System-level integration of REASON with a host GPU (paper Sec. VI).

* :mod:`coprocessor` — the programming model of Listing 1:
  ``reason_execute`` / ``reason_check_status`` with shared-memory flag
  synchronization;
* :mod:`partition` — workload partitioning between GPU and REASON;
* :mod:`pipeline` — the two-level execution pipeline: GPU↔REASON task
  overlap plus intra-REASON pipelining, and the end-to-end latency
  model used by the evaluation benchmarks;
* :mod:`sharding` — shard-level composition of per-instance pipelines
  into service makespans (the model behind ``ReasonService`` stats);
* :mod:`runner` — executing workload kernels on the accelerator model.
"""

from repro.core.system.coprocessor import (
    ReasonCoprocessor,
    CoprocessorStatus,
    SharedMemoryFlags,
)
from repro.core.system.partition import partition_kernels, Placement
from repro.core.system.pipeline import (
    TwoLevelPipeline,
    PipelineResult,
    baseline_end_to_end,
    reason_end_to_end,
)
from repro.core.system.sharding import ShardComposition, compose_shard_makespans
from repro.core.system.runner import time_kernel_on_reason, ReasonTiming

__all__ = [
    "ReasonCoprocessor",
    "CoprocessorStatus",
    "SharedMemoryFlags",
    "partition_kernels",
    "Placement",
    "TwoLevelPipeline",
    "PipelineResult",
    "baseline_end_to_end",
    "reason_end_to_end",
    "ShardComposition",
    "compose_shard_makespans",
    "time_kernel_on_reason",
    "ReasonTiming",
]
