"""The REASON programming model (paper Listing 1, Sec. VI-B).

`ReasonCoprocessor` mirrors the C++ interface: ``reason_execute``
launches symbolic processing for a batch after the GPU sets the
``neural_ready`` flag; ``reason_check_status`` polls (or blocks on) the
engine; results return through the shared-memory ``symbolic_buffer``
with the ``symbolic_ready`` flag — no CUDA stream synchronization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

from repro.core.arch.accelerator import ReasonAccelerator
from repro.core.arch.config import ArchConfig, DEFAULT_CONFIG
from repro.core.arch.tree_pe import PEMode
from repro.core.dag.graph import Dag, default_leaf_inputs
from repro.core.compiler import compile_dag
from repro.logic.cnf import CNF


class CoprocessorStatus(enum.Enum):
    IDLE = "idle"
    EXECUTION = "execution"


class ReasoningMode(enum.Enum):
    SYMBOLIC = "symbolic"
    PROBABILISTIC = "probabilistic"


@dataclass
class SharedMemoryFlags:
    """The flag buffers SMs and REASON synchronize through."""

    neural_ready: Dict[int, bool] = field(default_factory=dict)
    symbolic_ready: Dict[int, bool] = field(default_factory=dict)

    def set_neural_ready(self, batch_id: int) -> None:
        self.neural_ready[batch_id] = True

    def set_symbolic_ready(self, batch_id: int) -> None:
        self.symbolic_ready[batch_id] = True

    def clear(self, batch_id: int) -> None:
        self.neural_ready.pop(batch_id, None)
        self.symbolic_ready.pop(batch_id, None)


@dataclass
class _BatchRecord:
    batch_id: int
    finish_time_s: float
    result: object
    cycles: int


class ReasonCoprocessor:
    """Host-side handle to one REASON instance.

    The model keeps a busy-until clock so overlapping ``reason_execute``
    calls queue, exactly as a physical engine polled through
    ``reason_check_status`` would behave.
    """

    def __init__(self, config: ArchConfig = DEFAULT_CONFIG):
        self.config = config
        self.flags = SharedMemoryFlags()
        self._busy_until_s = 0.0
        self._batches: Dict[int, _BatchRecord] = {}
        self.total_cycles = 0
        self.executions = 0

    def reason_execute(
        self,
        batch_id: int,
        batch_size: int,
        neural_buffer: Union[Dag, CNF],
        reasoning_mode: ReasoningMode,
        now_s: float = 0.0,
    ) -> _BatchRecord:
        """Launch symbolic execution for one batch (Listing 1).

        ``neural_buffer`` carries the structure the neural stage
        produced: a unified DAG for probabilistic kernels or a CNF for
        symbolic ones.  Returns the batch record with the completion
        time; results land in the shared-memory flags.
        """
        if not self.flags.neural_ready.get(batch_id, False):
            raise RuntimeError(
                f"batch {batch_id}: neural_ready flag not set before reason_execute"
            )
        accelerator = ReasonAccelerator(self.config)
        if reasoning_mode is ReasoningMode.SYMBOLIC:
            if not isinstance(neural_buffer, CNF):
                raise TypeError("symbolic mode expects a CNF buffer")
            trace, solver = accelerator.run_symbolic(neural_buffer)
            cycles = trace.cycles * batch_size
            result: object = solver.stats
        else:
            if not isinstance(neural_buffer, Dag):
                raise TypeError("probabilistic mode expects a DAG buffer")
            program, _ = compile_dag(neural_buffer, self.config)
            report = accelerator.run_program(
                program, default_leaf_inputs(program.dag), mode=PEMode.PROBABILISTIC
            )
            cycles = report.cycles * batch_size
            result = report.result

        start = max(now_s, self._busy_until_s)
        finish = start + cycles * self.config.cycle_time_s
        self._busy_until_s = finish
        self.total_cycles += cycles
        self.executions += 1
        record = _BatchRecord(batch_id, finish, result, cycles)
        self._batches[batch_id] = record
        self.flags.set_symbolic_ready(batch_id)
        return record

    def reason_check_status(
        self, batch_id: int, blocking: bool = False, now_s: float = 0.0
    ) -> Tuple[CoprocessorStatus, float]:
        """Report (status, time): EXECUTION until the batch finishes.

        With ``blocking`` the returned time advances to completion —
        the host thread waits for REASON to go idle.
        """
        record = self._batches.get(batch_id)
        if record is None:
            return CoprocessorStatus.IDLE, now_s
        if blocking:
            return CoprocessorStatus.IDLE, max(now_s, record.finish_time_s)
        if now_s >= record.finish_time_s:
            return CoprocessorStatus.IDLE, now_s
        return CoprocessorStatus.EXECUTION, now_s

    def result_of(self, batch_id: int) -> object:
        record = self._batches.get(batch_id)
        if record is None:
            raise KeyError(f"no batch {batch_id}")
        if not self.flags.symbolic_ready.get(batch_id, False):
            raise RuntimeError(f"batch {batch_id}: symbolic_ready flag not set")
        return record.result
