"""Workload partitioning between GPU SMs and REASON (paper Sec. VI-A).

Neural kernels (dense tensor ops) stay on the GPU, whose throughput and
programmability suit them; symbolic and probabilistic kernels offload to
REASON.  The partitioner operates on kernel classes so the same policy
covers every workload.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Tuple

from repro.baselines.device import KernelClass, KernelProfile


class Placement(enum.Enum):
    GPU = "gpu"
    REASON = "reason"


#: The paper's static policy: tensor kernels → GPU, everything else → REASON.
_POLICY: Dict[KernelClass, Placement] = {
    KernelClass.NEURAL_GEMM: Placement.GPU,
    KernelClass.NEURAL_SOFTMAX: Placement.GPU,
    KernelClass.SPARSE_MATVEC: Placement.REASON,  # SpMSpM mode (Sec. V-B)
    KernelClass.LOGIC: Placement.REASON,
    KernelClass.MARGINAL: Placement.REASON,
    KernelClass.BAYESIAN: Placement.REASON,
}


def placement_of(kernel_class: KernelClass) -> Placement:
    return _POLICY[kernel_class]


def partition_kernels(
    profiles: Iterable[KernelProfile],
) -> Tuple[List[KernelProfile], List[KernelProfile]]:
    """Split a kernel sequence into (gpu_kernels, reason_kernels)."""
    gpu: List[KernelProfile] = []
    reason: List[KernelProfile] = []
    for profile in profiles:
        if placement_of(profile.kernel_class) is Placement.GPU:
            gpu.append(profile)
        else:
            reason.append(profile)
    return gpu, reason
