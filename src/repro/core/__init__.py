"""REASON core: the paper's primary contribution.

Subpackages:

* :mod:`repro.core.dag` — Stage 1-3 algorithm optimizations: the unified
  DAG representation, adaptive pruning, and two-input regularization.
* :mod:`repro.core.compiler` — the four-step DAG→hardware compiler
  (block decomposition, PE/register mapping, tree mapping, reordering).
* :mod:`repro.core.arch` — the reconfigurable tree-PE accelerator model
  (cycle/energy simulation, watched-literals unit, BCP FIFO, Benes
  network, interconnect topologies).
* :mod:`repro.core.system` — GPU integration: coprocessor programming
  model and the two-level execution pipeline.
"""
