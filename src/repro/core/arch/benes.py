"""Benes network model: the N:N distribution crossbar of Fig. 6(c).

A Benes network on N = 2^k endpoints is two back-to-back butterflies
(2·log2(N) - 1 stages of N/2 2×2 switches) and routes *any* permutation
without conflict — the property that lets REASON decouple SRAM banking
from DAG mapping.  :meth:`BenesNetwork.route` runs the classic looping
algorithm and returns a switch-setting tree whose
:meth:`~BenesRouting.realized_permutation` reconstructs the permutation
the settings implement (so correctness is testable end to end).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


@dataclass
class BenesRouting:
    """Recursive switch settings for one routed permutation.

    ``first_stage[i]`` / ``last_stage[i]`` tell whether 2×2 switch ``i``
    of the entry/exit column is crossed; ``upper``/``lower`` are the
    sub-network routings (None at the 2-endpoint base case, where
    ``first_stage`` holds the single switch).
    """

    n: int
    first_stage: List[bool]
    last_stage: List[bool]
    upper: Optional["BenesRouting"] = None
    lower: Optional["BenesRouting"] = None

    def realized_permutation(self) -> List[int]:
        """The permutation these switch settings actually implement."""
        if self.n == 2:
            return [1, 0] if self.first_stage[0] else [0, 1]
        half = self.n // 2
        assert self.upper is not None and self.lower is not None
        up = self.upper.realized_permutation()
        low = self.lower.realized_permutation()
        out = [0] * self.n
        for i in range(half):
            a, b = 2 * i, 2 * i + 1
            # Straight: a → upper input i, b → lower input i.
            to_upper, to_lower = (b, a) if self.first_stage[i] else (a, b)
            ju, jl = up[i], low[i]
            # Exit switch j: straight maps upper j → output 2j.
            out[to_upper] = 2 * ju + (1 if self.last_stage[ju] else 0)
            out[to_lower] = 2 * jl + (0 if self.last_stage[jl] else 1)
        return out

    @property
    def switches_crossed(self) -> int:
        total = sum(self.first_stage)
        if self.n > 2:
            total += sum(self.last_stage)
            assert self.upper is not None and self.lower is not None
            total += self.upper.switches_crossed + self.lower.switches_crossed
        return total

    @property
    def total_switches(self) -> int:
        if self.n == 2:
            return 1
        assert self.upper is not None and self.lower is not None
        return self.n + self.upper.total_switches + self.lower.total_switches


class BenesNetwork:
    """An N-endpoint Benes network (N a power of two, N ≥ 2)."""

    def __init__(self, num_endpoints: int):
        if not _is_power_of_two(num_endpoints) or num_endpoints < 2:
            raise ValueError("Benes network size must be a power of two ≥ 2")
        self.n = num_endpoints

    @property
    def num_stages(self) -> int:
        if self.n == 2:
            return 1
        return 2 * int(math.log2(self.n)) - 1

    @property
    def num_switches(self) -> int:
        return (self.n // 2) * self.num_stages

    def route(self, permutation: Sequence[int]) -> BenesRouting:
        """Route ``permutation`` (input i → output permutation[i]).

        The looping algorithm 2-colors the pairing constraints (always
        possible: the constraint graph is a disjoint union of even
        cycles), so every permutation routes conflict-free.
        """
        perm = list(permutation)
        if sorted(perm) != list(range(self.n)):
            raise ValueError("input is not a permutation")
        return self._route(perm)

    def _route(self, perm: List[int]) -> BenesRouting:
        n = len(perm)
        if n == 2:
            return BenesRouting(2, [perm[0] == 1], [])
        half = n // 2

        # Side assignment: side[p] = 0 (upper) or 1 (lower) per input.
        # Constraint edges force different sides: input-pair partners
        # share a first-column switch; sources of output-pair partners
        # share an exit switch.  Every vertex has degree 2 and edge
        # types alternate around cycles, so the graph is a union of
        # even cycles — 2-colorable by BFS.
        source_of = {out: p for p, out in enumerate(perm)}
        adjacency: Dict[int, List[int]] = {p: [] for p in range(n)}
        for i in range(half):
            a, b = 2 * i, 2 * i + 1
            adjacency[a].append(b)
            adjacency[b].append(a)
        for j in range(half):
            a, b = source_of[2 * j], source_of[2 * j + 1]
            adjacency[a].append(b)
            adjacency[b].append(a)

        side: Dict[int, int] = {}
        for start in range(n):
            if start in side:
                continue
            side[start] = 0
            stack = [start]
            while stack:
                u = stack.pop()
                for v in adjacency[u]:
                    if v not in side:
                        side[v] = 1 - side[u]
                        stack.append(v)

        first_stage = [side[2 * i] == 1 for i in range(half)]

        # Sub-permutations: input switch index i → output switch index.
        upper_perm = [0] * half
        lower_perm = [0] * half
        last_stage = [False] * half
        for p in range(n):
            i = p // 2
            j = perm[p] // 2
            if side[p] == 0:
                upper_perm[i] = j
                if perm[p] % 2 == 1:
                    last_stage[j] = True
            else:
                lower_perm[i] = j
                if perm[p] % 2 == 0:
                    last_stage[j] = True

        # Defensive validation: both sub-perms must be permutations.
        if sorted(upper_perm) != list(range(half)) or sorted(lower_perm) != list(range(half)):
            raise AssertionError("looping algorithm produced invalid sub-permutation")

        return BenesRouting(
            n,
            first_stage,
            last_stage,
            self._route(upper_perm),
            self._route(lower_perm),
        )


def routing_cycles(network: BenesNetwork) -> int:
    """Pipeline latency in cycles to traverse the network (one per stage)."""
    return network.num_stages
