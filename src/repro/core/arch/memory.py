"""Memory subsystem: banked SRAM, shared scratchpad, prefetcher/DMA.

Models the paper's hierarchy (Fig. 6): per-PE dual-port SRAM banks
behind the Benes crossbar, a shared local scratchpad, and a DMA engine
that overlaps remote fetches with compute (the latency-hiding behavior
of the Fig. 9 timeline).  Costs are in cycles and energy events; data
values themselves live in the functional layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.arch.config import ArchConfig
from repro.core.arch.energy import EnergyModel


@dataclass
class MemoryStats:
    sram_reads: int = 0
    sram_writes: int = 0
    bank_conflicts: int = 0
    scratchpad_accesses: int = 0
    dram_accesses: int = 0
    dma_transfers: int = 0
    dma_cycles_hidden: int = 0


class SramBanks:
    """Banked local SRAM with per-cycle conflict accounting."""

    def __init__(self, config: ArchConfig, energy: Optional[EnergyModel] = None):
        self.config = config
        self.energy = energy
        self.stats = MemoryStats()
        self._cycle_reads: Dict[int, int] = {}
        self._current_cycle = -1

    def begin_cycle(self, cycle: int) -> None:
        self._cycle_reads = {}
        self._current_cycle = cycle

    def read(self, bank: int, count: int = 1) -> int:
        """Read words from a bank; returns extra stall cycles caused by
        conflicts (dual-ported: two accesses per bank per cycle)."""
        bank %= max(self.config.sram_banks, 1)
        before = self._cycle_reads.get(bank, 0)
        self._cycle_reads[bank] = before + count
        self.stats.sram_reads += count
        if self.energy:
            self.energy.record("sram_access", count)
        over = max(0, self._cycle_reads[bank] - 2)
        new_conflicts = max(0, over - max(0, before - 2))
        self.stats.bank_conflicts += new_conflicts
        return new_conflicts

    def read_batch(self, bank_counts: Dict[int, int]) -> int:
        """Accumulate a burst of reads given per-bank word counts.

        Equivalent to calling :meth:`read` once per word but in one
        pass: conflict accounting telescopes (each bank's stall count
        depends only on its running total), so the aggregate update is
        exact.  Banks must already be normalized modulo ``sram_banks``.
        Returns the new conflict stalls caused by the burst.
        """
        cycle_reads = self._cycle_reads
        total = 0
        conflicts = 0
        for bank, count in bank_counts.items():
            before = cycle_reads.get(bank, 0)
            after = before + count
            cycle_reads[bank] = after
            total += count
            conflicts += max(0, after - 2) - max(0, before - 2)
        self.stats.sram_reads += total
        self.stats.bank_conflicts += conflicts
        if self.energy:
            self.energy.sram_access += total
        return conflicts

    def write(self, bank: int, count: int = 1) -> None:
        self.stats.sram_writes += count
        if self.energy:
            self.energy.record("sram_access", count)


class Scratchpad:
    """Shared local memory between the PEs (fixed access latency)."""

    LATENCY_CYCLES = 4

    def __init__(self, config: ArchConfig, energy: Optional[EnergyModel] = None):
        self.config = config
        self.energy = energy
        self.stats = MemoryStats()

    def access(self, words: int = 1) -> int:
        self.stats.scratchpad_accesses += words
        if self.energy:
            self.energy.record("scratchpad_access", words)
        return self.LATENCY_CYCLES


@dataclass
class DmaTransfer:
    start_cycle: int
    finish_cycle: int
    words: int


class DmaEngine:
    """Prefetcher/DMA between DRAM and local SRAM.

    Transfers run in the background; :meth:`cycles_exposed` reports how
    much of a transfer's latency could *not* be hidden behind compute —
    the quantity the two-level pipeline minimizes.
    """

    def __init__(self, config: ArchConfig, energy: Optional[EnergyModel] = None):
        self.config = config
        self.energy = energy
        self.stats = MemoryStats()
        self.inflight: List[DmaTransfer] = []

    def issue(self, cycle: int, words: int) -> DmaTransfer:
        """Start fetching ``words`` 32-bit words from DRAM at ``cycle``."""
        bytes_per_cycle = (
            self.config.dram_bandwidth_gbps * 1e9 / self.config.frequency_hz
        )
        transfer_cycles = max(1, int(4 * words / bytes_per_cycle))
        finish = cycle + self.config.dram_latency_cycles + transfer_cycles
        transfer = DmaTransfer(cycle, finish, words)
        self.inflight.append(transfer)
        self.stats.dma_transfers += 1
        self.stats.dram_accesses += words
        if self.energy:
            self.energy.record("dram_access", words)
        return transfer

    def cycles_exposed(self, transfer: DmaTransfer, need_cycle: int) -> int:
        """Stall cycles if the data is needed at ``need_cycle``."""
        exposed = max(0, transfer.finish_cycle - need_cycle)
        hidden = (transfer.finish_cycle - transfer.start_cycle) - exposed
        self.stats.dma_cycles_hidden += max(hidden, 0)
        return exposed

    def cancel_pending(self, cycle: int) -> int:
        """Abort in-flight transfers (Fig. 9 T22: conflict halts DMA).

        Returns how many transfers were cancelled."""
        before = len(self.inflight)
        self.inflight = [t for t in self.inflight if t.finish_cycle <= cycle]
        return before - len(self.inflight)
