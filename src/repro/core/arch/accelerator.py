"""Top-level REASON accelerator model.

Two execution paths mirror the paper's two kernel families:

* :meth:`ReasonAccelerator.run_program` executes a compiled VLIW program
  (probabilistic / logic DAG inference) functionally while accounting
  cycles, memory traffic and energy — validated against the reference
  DAG evaluator.
* :meth:`ReasonAccelerator.run_symbolic` replays a CDCL solver trace on
  the symbolic machinery (watched-literals unit, BCP FIFO, pipelined
  broadcast/reduction over the node tree), reproducing the Fig. 9
  timeline: implications pipeline through the reduction tree, watch-list
  misses trigger DMA whose latency is hidden behind queued work, and a
  conflict flushes the FIFO and cancels outstanding fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.arch.bcp_fifo import BcpFifo
from repro.core.arch.config import ArchConfig, DEFAULT_CONFIG
from repro.core.arch.energy import EnergyModel
from repro.core.arch.interconnect import Topology, broadcast_cycles
from repro.core.arch.memory import DmaEngine, Scratchpad, SramBanks
from repro.core.arch.tree_pe import PEMode, TreePE
from repro.core.arch.watched_literals import WatchedLiteralsUnit
from repro.core.compiler.program import InstructionKind, Program
from repro.logic.cdcl import CDCLSolver
from repro.logic.cnf import CNF
from repro.trace.format import PHASE_PROGRAM, PHASE_SYMBOLIC, EventKind


@dataclass
class ExecutionReport:
    """Outcome of running one compiled kernel."""

    result: Optional[float]
    cycles: int
    energy_j: float
    power_w: float
    utilization: float
    instructions: int
    stalls: int = 0

    @property
    def runtime_s(self) -> float:
        return self.cycles / DEFAULT_CONFIG.frequency_hz

    def runtime_at(self, config: ArchConfig) -> float:
        return self.cycles * config.cycle_time_s


@dataclass
class PipelineEvent:
    """One row of the Fig. 9 style cycle timeline."""

    cycle: int
    unit: str  # "broadcast" | "reduction" | "fifo" | "wl" | "dma" | "control"
    description: str


@dataclass
class SymbolicExecutionTrace:
    """Cycle-accurate account of a symbolic (CDCL) replay."""

    cycles: int = 0
    events: List[PipelineEvent] = field(default_factory=list)
    decisions: int = 0
    implications: int = 0
    conflicts: int = 0
    fifo_flushes: int = 0
    dma_cancelled: int = 0


class ReasonAccelerator:
    """One REASON instance: PEs + memory + symbolic units + energy."""

    def __init__(self, config: ArchConfig = DEFAULT_CONFIG):
        self.config = config
        self.energy = EnergyModel(config=config)
        self.sram = SramBanks(config, self.energy)
        self.scratchpad = Scratchpad(config, self.energy)
        self.dma = DmaEngine(config, self.energy)
        self.pes = [TreePE(config, self.energy) for _ in range(config.num_pes)]
        self.wl_unit = WatchedLiteralsUnit(config, self.sram)
        self.fifo = BcpFifo(config.bcp_fifo_depth)
        # Opt-in binary event trace (repro.trace).  None (the default)
        # keeps the execution loops on their untraced hot paths — the
        # only cost of the feature when off is one local None check per
        # event branch.  Attach via :meth:`attach_trace`.
        self.trace = None

    def attach_trace(self, writer) -> None:
        """Stream every modeled event into a
        :class:`~repro.trace.writer.TraceWriter` (replay events, VLIW
        instruction issues, PE block evaluations).  The caller owns the
        writer's lifecycle — the accelerator only emits."""
        self.trace = writer
        for pe in self.pes:
            pe.trace = writer

    # -------------------------------------------------------- DAG programs

    def run_program(
        self,
        program: Program,
        inputs: Optional[Dict[int, float]] = None,
        mode: PEMode = PEMode.PROBABILISTIC,
    ) -> ExecutionReport:
        """Execute a compiled program; returns the root value and costs.

        ``inputs`` maps DAG leaf node ids to values (same contract as
        :func:`repro.core.dag.graph.evaluate_dag`); missing inputs
        default to 0.0 for logic and to the leaf payload mass for
        probabilistic leaves when the compiler recorded one.
        """
        inputs = dict(inputs or {})
        values: Dict[int, float] = dict(inputs)
        stalls = 0
        switch_penalty = 0
        max_finish = 0

        for pe in self.pes:
            if pe.mode is not mode:
                switch_penalty += pe.mode_switch_penalty()
            pe.set_mode(mode)

        # Per-instruction event counts accumulate locally and flush to
        # the energy model in one aggregate update after the loop.
        register_events = 0
        network_hops = 0
        compute_count = 0
        memory_ops = 0
        pes = self.pes
        num_pes = len(pes)
        pipeline_stages = self.config.pipeline_stages
        kind_compute = InstructionKind.COMPUTE
        kind_load = InstructionKind.LOAD
        kind_reload = InstructionKind.RELOAD
        kind_nop = InstructionKind.NOP

        # Tracing is opt-in: `emit` is None on the untraced hot path, so
        # the only added cost when off is one local None check per
        # instruction branch.
        tw = self.trace
        emit = None if tw is None else tw.emit
        if emit is not None:
            ev_compute = EventKind.COMPUTE
            ev_load = EventKind.LOAD
            ev_reload = EventKind.RELOAD
            ev_store = EventKind.STORE
            ev_spill = EventKind.SPILL
            ev_nop = EventKind.NOP
            kind_store = InstructionKind.STORE
            emit(EventKind.PHASE, 0, PHASE_PROGRAM)

        for instruction in program.instructions:
            kind = instruction.kind
            if kind is kind_compute:
                pe = pes[instruction.pe % num_pes]
                if emit is not None:
                    emit(ev_compute, instruction.issue_cycle, instruction.pe % num_pes)
                leaf_values = {}
                for position, value_id in instruction.leaf_operands.items():
                    if value_id not in values:
                        raise KeyError(
                            f"input value for DAG node {value_id} missing"
                        )
                    leaf_values[position] = values[value_id]
                result = pe.execute_config(instruction.tree_config, leaf_values)
                values[instruction.output_value] = result
                # Register traffic: operand reads + one write-back.
                register_events += len(instruction.reads) + 1
                network_hops += len(instruction.leaf_operands)
                compute_count += 1
                finish = instruction.issue_cycle + pipeline_stages
                if finish > max_finish:
                    max_finish = finish
            elif kind is kind_load or kind is kind_reload:
                memory_ops += 1
                if emit is not None:
                    # The scheduler fills issue_cycle only for COMPUTE
                    # and NOP; memory ops ride the clock's last value
                    # (cycle=None -> zero delta, one code byte).
                    bank = instruction.write[0] if instruction.write else 0
                    emit(ev_load if kind is kind_load else ev_reload, None, bank)
            elif kind is kind_nop:
                stalls += 1
                if emit is not None:
                    issue = instruction.issue_cycle
                    emit(ev_nop, issue if issue >= 0 else None)
            else:  # STORE / SPILL
                memory_ops += 1
                if emit is not None:
                    if instruction.write:
                        bank = instruction.write[0]
                    elif instruction.reads:
                        bank = instruction.reads[0][0]
                    else:
                        bank = 0
                    emit(ev_store if kind is kind_store else ev_spill, None, bank)

        energy = self.energy
        energy.register_access += register_events + memory_ops
        energy.network_hop += network_hops
        energy.control_overhead += compute_count
        energy.sram_access += memory_ops

        cycles = max(max_finish, len(program.instructions)) + switch_penalty
        if emit is not None:
            emit(EventKind.RUN_END, cycles)
        root = values.get(program.root_value) if program.root_value is not None else None
        utilization = (
            sum(pe.stats.active_node_ops for pe in self.pes)
            / max(1, sum(pe.stats.instructions for pe in self.pes) * self.config.nodes_per_pe)
        )
        return ExecutionReport(
            result=root,
            cycles=cycles,
            energy_j=self.energy.total_energy_j(),
            power_w=self.energy.average_power_w(cycles),
            utilization=utilization,
            instructions=len(program.instructions),
            stalls=stalls,
        )

    # ------------------------------------------------------- symbolic mode

    def run_symbolic(
        self,
        formula: CNF,
        solver: Optional[CDCLSolver] = None,
        record_events: bool = False,
        max_events: int = 2000,
    ) -> Tuple[SymbolicExecutionTrace, "CDCLSolver"]:
        """Solve ``formula`` and replay the BCP trace on the hardware.

        A software CDCL run produces the decision/implication/conflict
        event stream; the replay charges broadcast and reduction latency
        over the node tree, watch-list traversal cycles, FIFO
        serialization, and DMA exposure, honoring the ablation switches
        (linked-list layout, pipelined scheduling).
        """
        if solver is None:
            solver = CDCLSolver(record_trace=True)
        elif not solver.record_trace:
            solver.record_trace = True
        solver.solve(formula)
        return self._replay(formula, solver, record_events, max_events)

    def _replay(
        self,
        formula: CNF,
        solver: "CDCLSolver",
        record_events: bool,
        max_events: int,
    ) -> Tuple[SymbolicExecutionTrace, "CDCLSolver"]:
        """Charge hardware costs for an already-recorded CDCL trace."""
        for pe in self.pes:
            pe.set_mode(PEMode.SYMBOLIC)
        self.wl_unit.load_formula(formula)

        trace = SymbolicExecutionTrace()
        tree_hops = int(broadcast_cycles(Topology.TREE, self.config.leaves_per_pe))
        cycle = 0

        def log(unit: str, text: str) -> None:
            if len(trace.events) < max_events:
                trace.events.append(PipelineEvent(cycle, unit, text))

        # Hot loop: replay charges each event from its literal's cached
        # watch summary and accumulates bookkeeping in local counters,
        # flushing to the energy model / WL unit / SRAM banks once at
        # the end — the aggregates are exactly the per-event totals.
        config = self.config
        wl = self.wl_unit
        summary_for = wl.summary_for
        fifo = self.fifo
        queue = fifo._queue
        fifo_stats = fifo.stats
        fifo_depth = fifo.depth
        pipelined = config.pipelined_scheduling
        dram_latency = config.dram_latency_cycles
        leaves_per_pe = config.leaves_per_pe

        decisions = 0
        implications = 0
        conflicts = 0
        fifo_flushes = 0
        network_hops = 0
        control_events = 0
        logic_ops = 0
        fifo_ops = 0
        pushes = 0
        pops = 0
        overflow_stalls = 0
        flushes = 0
        entries_flushed = 0
        max_occupancy = fifo_stats.max_occupancy
        # Traversal statistics are identical for every assignment of the
        # same literal, so the loop keeps one record per literal —
        # [clause count, access cycles, traversals] — and the full
        # per-event accounting is reconstructed afterwards.  The record
        # lookup is intentionally inlined (not a helper) in both the
        # imply and decide branches; keep the two blocks identical.
        lit_state: Dict[int, List[int]] = {}

        # Opt-in binary event trace.  When detached (`emit is None`, the
        # default) each branch pays exactly one local None check; the
        # traced path records absolute replay cycles so offline tools
        # can reconstruct the Fig. 9 timeline without max_events limits.
        tw = self.trace
        emit = None if tw is None else tw.emit
        if emit is not None:
            ev_decide = EventKind.DECIDE
            ev_propagate = EventKind.PROPAGATE
            ev_conflict = EventKind.CONFLICT
            ev_learn = EventKind.LEARN
            ev_backjump = EventKind.BACKJUMP
            ev_restart = EventKind.RESTART
            ev_watch = EventKind.WATCH_UPDATE
            ev_dma = EventKind.DMA_FETCH
            ev_bank = EventKind.BANK_READ
            # Per-literal bank-read summaries, cached on the traced path
            # only (the untraced path reconstructs them once at flush).
            lit_banks: Dict[int, tuple] = {}
            emit(EventKind.PHASE, 0, PHASE_SYMBOLIC)

        pending_dma = None
        for event in solver.trace:
            kind = event.kind
            if kind == "imply":
                implications += 1
                # Implication returns through the reduction tree; queued
                # implications pipeline at one per cycle (Fig. 9).
                if queue:
                    cycle += 1
                else:
                    cycle += tree_hops
                if len(queue) >= fifo_depth:
                    overflow_stalls += 1
                    cycle += 1  # overflow stall, retry
                    queue.popleft()
                    pops += 1
                queue.append((event.literal, -1))
                pushes += 1
                occupancy = len(queue)
                if occupancy > max_occupancy:
                    max_occupancy = occupancy
                fifo_ops += 1
                network_hops += 1
                if record_events:
                    log("reduction", f"imply literal {event.literal}")
                # The queue is non-empty here, so the pop always yields.
                popped = queue.popleft()
                pops += 1
                literal = -popped[0]
                state = lit_state.get(literal)
                if state is None:
                    summary = summary_for(literal)
                    state = [len(summary.clauses), summary.access_cycles, 1]
                    lit_state[literal] = state
                else:
                    state[2] += 1
                num_clauses = state[0]
                access = state[1]
                if access > dram_latency:
                    # Local miss: DMA fetch, partially hidden by
                    # continuing to service the FIFO.
                    pending_dma = self.dma.issue(cycle, words=num_clauses * 4 + 4)
                    hidden = min(len(queue), dram_latency)
                    cycle += max(1, access - hidden)
                    if emit is not None:
                        emit(ev_dma, cycle, num_clauses * 4 + 4)
                    if record_events:
                        log("dma", "watch-list miss, DMA fetch in flight")
                else:
                    cycle += access if pipelined else access * 2
                logic_ops += max(num_clauses, 1)
                if emit is not None:
                    emit(ev_propagate, cycle, popped[0])
                    emit(ev_watch, cycle, literal, num_clauses)
                    banks = lit_banks.get(literal)
                    if banks is None:
                        banks = lit_banks[literal] = summary_for(literal).bank_reads
                    for bank, count in banks:
                        emit(ev_bank, cycle, bank, count)
            elif kind == "decide":
                decisions += 1
                cycle += tree_hops  # broadcast decision to leaves
                network_hops += leaves_per_pe
                control_events += 1
                if record_events:
                    log("broadcast", f"decide literal {event.literal}")
                literal = -event.literal
                state = lit_state.get(literal)
                if state is None:
                    summary = summary_for(literal)
                    state = [len(summary.clauses), summary.access_cycles, 1]
                    lit_state[literal] = state
                else:
                    state[2] += 1
                num_clauses = state[0]
                cycle += state[1] if pipelined else state[1] * 2
                logic_ops += num_clauses
                if emit is not None:
                    emit(ev_decide, cycle, event.literal)
                    emit(ev_watch, cycle, literal, num_clauses)
                    banks = lit_banks.get(literal)
                    if banks is None:
                        banks = lit_banks[literal] = summary_for(literal).bank_reads
                    for bank, count in banks:
                        emit(ev_bank, cycle, bank, count)
                if record_events:
                    log("wl", f"{num_clauses} watched clauses inspected")
            elif kind == "conflict":
                conflicts += 1
                cycle += tree_hops  # conflict propagates to the root
                dropped = len(queue)
                queue.clear()
                flushes += 1
                entries_flushed += dropped
                fifo_flushes += 1
                if pending_dma is not None:
                    trace.dma_cancelled += self.dma.cancel_pending(cycle)
                    pending_dma = None
                cycle += 1  # priority control assertion
                control_events += 2
                if emit is not None:
                    emit(ev_conflict, cycle, dropped)
                if record_events:
                    log("control", f"conflict: flushed {dropped} pending implications")
            elif kind == "backjump":
                cycle += 2  # trail unwinding bookkeeping on the scalar PE
                if emit is not None:
                    emit(ev_backjump, cycle, event.level)
                if record_events:
                    log("control", f"backjump to level {event.level}")
            elif kind == "restart":
                cycle += config.pipeline_stages
                if emit is not None:
                    emit(ev_restart, cycle)
                if record_events:
                    log("control", "restart")
            elif kind == "learn":
                # Annotation-only: a learned clause costs no modeled
                # cycles or energy here (the conflict that produced it
                # already paid), so replay accounting is unchanged
                # whether or not the solver trace carries learn events.
                if emit is not None:
                    emit(ev_learn, cycle, event.clause_size)

        trace.decisions = decisions
        trace.implications = implications
        trace.conflicts = conflicts
        trace.fifo_flushes = fifo_flushes

        fifo_stats.pushes += pushes
        fifo_stats.pops += pops
        fifo_stats.overflow_stalls += overflow_stalls
        fifo_stats.flushes += flushes
        fifo_stats.entries_flushed += entries_flushed
        fifo_stats.max_occupancy = max_occupancy

        energy = self.energy
        energy.network_hop += network_hops
        energy.control_overhead += control_events
        energy.logic_op += logic_ops
        energy.fifo_op += fifo_ops

        head_lookups = 0
        traversal_steps = 0
        clause_fetches = 0
        words_touched = 0
        wl_misses = 0
        full_scans = 0
        bank_reads: Dict[int, int] = {}
        for literal, (_, _, times) in lit_state.items():
            summary = summary_for(literal)
            num_clauses = len(summary.clauses)
            if summary.full_scan:
                full_scans += times
            else:
                head_lookups += times
                traversal_steps += times * num_clauses
                wl_misses += times * summary.misses
            clause_fetches += times * num_clauses
            words_touched += times * summary.words_touched
            for bank, count in summary.bank_reads:
                bank_reads[bank] = bank_reads.get(bank, 0) + times * count
        wl.charge_bulk(
            head_lookups,
            traversal_steps,
            clause_fetches,
            words_touched,
            wl_misses,
            full_scans,
            bank_reads,
        )

        trace.cycles = cycle
        if emit is not None:
            emit(EventKind.RUN_END, cycle)
        return trace, solver

    def run_symbolic_parallel(
        self,
        formula: CNF,
        cutoff_depth: int = 3,
    ) -> Tuple[SymbolicExecutionTrace, List[SymbolicExecutionTrace]]:
        """Cube-and-conquer across the PE array (Fig. 9 top).

        The lookahead DPLL phase splits the formula into cubes; each
        cube's CDCL conquer run replays on its own tree PE, so the
        chip-level makespan is the longest per-PE queue rather than the
        serial sum.  Returns (aggregate trace with the parallel
        makespan, per-cube traces).
        """
        from repro.logic.cube_and_conquer import CubeAndConquerSolver

        splitter = CubeAndConquerSolver(cutoff_depth=cutoff_depth)
        workloads = splitter.conquer_workloads(formula)
        per_cube: List[SymbolicExecutionTrace] = []
        pe_busy = [0] * self.config.num_pes
        aggregate = SymbolicExecutionTrace()
        for index, (cube, solver) in enumerate(workloads):
            worker = ReasonAccelerator(self.config)
            trace, _ = worker.run_symbolic_trace(formula, solver)
            per_cube.append(trace)
            self.energy.merge(worker.energy)
            # Greedy list scheduling onto the least-busy PE.
            target = min(range(len(pe_busy)), key=lambda p: pe_busy[p])
            pe_busy[target] += trace.cycles
            aggregate.decisions += trace.decisions
            aggregate.implications += trace.implications
            aggregate.conflicts += trace.conflicts
            aggregate.fifo_flushes += trace.fifo_flushes
        aggregate.cycles = max(pe_busy) if any(pe_busy) else 0
        return aggregate, per_cube

    def run_symbolic_trace(
        self,
        formula: CNF,
        solver: "CDCLSolver",
        record_events: bool = False,
        max_events: int = 2000,
    ) -> Tuple[SymbolicExecutionTrace, "CDCLSolver"]:
        """Replay an already-solved CDCL run (trace must be recorded)."""
        if not solver.trace and (
            solver.stats.decisions or solver.stats.propagations
        ):
            raise ValueError("solver was run without record_trace=True")
        return self._replay(formula, solver, record_events, max_events)

    # ------------------------------------------------------------- reports

    def report(self, cycles: int) -> Dict[str, float]:
        return {
            "cycles": cycles,
            "runtime_s": cycles * self.config.cycle_time_s,
            "energy_j": self.energy.total_energy_j(),
            "power_w": self.energy.average_power_w(cycles),
            "area_mm2": self.energy.area_mm2(),
        }
