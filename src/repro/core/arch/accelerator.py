"""Top-level REASON accelerator model.

Two execution paths mirror the paper's two kernel families:

* :meth:`ReasonAccelerator.run_program` executes a compiled VLIW program
  (probabilistic / logic DAG inference) functionally while accounting
  cycles, memory traffic and energy — validated against the reference
  DAG evaluator.
* :meth:`ReasonAccelerator.run_symbolic` replays a CDCL solver trace on
  the symbolic machinery (watched-literals unit, BCP FIFO, pipelined
  broadcast/reduction over the node tree), reproducing the Fig. 9
  timeline: implications pipeline through the reduction tree, watch-list
  misses trigger DMA whose latency is hidden behind queued work, and a
  conflict flushes the FIFO and cancels outstanding fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.arch.bcp_fifo import BcpFifo
from repro.core.arch.config import ArchConfig, DEFAULT_CONFIG
from repro.core.arch.energy import EnergyModel
from repro.core.arch.interconnect import Topology, broadcast_cycles
from repro.core.arch.memory import DmaEngine, Scratchpad, SramBanks
from repro.core.arch.tree_pe import PEMode, TreePE
from repro.core.arch.watched_literals import WatchedLiteralsUnit
from repro.core.compiler.program import InstructionKind, Program
from repro.logic.cdcl import CDCLSolver
from repro.logic.cnf import CNF


@dataclass
class ExecutionReport:
    """Outcome of running one compiled kernel."""

    result: Optional[float]
    cycles: int
    energy_j: float
    power_w: float
    utilization: float
    instructions: int
    stalls: int = 0

    @property
    def runtime_s(self) -> float:
        return self.cycles / DEFAULT_CONFIG.frequency_hz

    def runtime_at(self, config: ArchConfig) -> float:
        return self.cycles * config.cycle_time_s


@dataclass
class PipelineEvent:
    """One row of the Fig. 9 style cycle timeline."""

    cycle: int
    unit: str  # "broadcast" | "reduction" | "fifo" | "wl" | "dma" | "control"
    description: str


@dataclass
class SymbolicExecutionTrace:
    """Cycle-accurate account of a symbolic (CDCL) replay."""

    cycles: int = 0
    events: List[PipelineEvent] = field(default_factory=list)
    decisions: int = 0
    implications: int = 0
    conflicts: int = 0
    fifo_flushes: int = 0
    dma_cancelled: int = 0


class ReasonAccelerator:
    """One REASON instance: PEs + memory + symbolic units + energy."""

    def __init__(self, config: ArchConfig = DEFAULT_CONFIG):
        self.config = config
        self.energy = EnergyModel(config=config)
        self.sram = SramBanks(config, self.energy)
        self.scratchpad = Scratchpad(config, self.energy)
        self.dma = DmaEngine(config, self.energy)
        self.pes = [TreePE(config, self.energy) for _ in range(config.num_pes)]
        self.wl_unit = WatchedLiteralsUnit(config, self.sram)
        self.fifo = BcpFifo(config.bcp_fifo_depth)

    # -------------------------------------------------------- DAG programs

    def run_program(
        self,
        program: Program,
        inputs: Optional[Dict[int, float]] = None,
        mode: PEMode = PEMode.PROBABILISTIC,
    ) -> ExecutionReport:
        """Execute a compiled program; returns the root value and costs.

        ``inputs`` maps DAG leaf node ids to values (same contract as
        :func:`repro.core.dag.graph.evaluate_dag`); missing inputs
        default to 0.0 for logic and to the leaf payload mass for
        probabilistic leaves when the compiler recorded one.
        """
        inputs = dict(inputs or {})
        values: Dict[int, float] = dict(inputs)
        stalls = 0
        switch_penalty = 0
        max_finish = 0

        for pe in self.pes:
            if pe.mode is not mode:
                switch_penalty += pe.mode_switch_penalty()
            pe.set_mode(mode)

        for instruction in program.instructions:
            if instruction.kind is InstructionKind.COMPUTE:
                pe = self.pes[instruction.pe % len(self.pes)]
                leaf_values = {}
                for position, value_id in instruction.leaf_operands.items():
                    if value_id not in values:
                        raise KeyError(
                            f"input value for DAG node {value_id} missing"
                        )
                    leaf_values[position] = values[value_id]
                result = pe.execute_config(instruction.tree_config, leaf_values)
                values[instruction.output_value] = result
                # Register traffic: operand reads + one write-back.
                self.energy.record("register_access", len(instruction.reads) + 1)
                self.energy.record("network_hop", len(instruction.leaf_operands))
                self.energy.record("control_overhead")
                finish = instruction.issue_cycle + self.config.pipeline_stages
                max_finish = max(max_finish, finish)
            elif instruction.kind in (InstructionKind.LOAD, InstructionKind.RELOAD):
                self.energy.record("sram_access")
                self.energy.record("register_access")
            elif instruction.kind in (InstructionKind.STORE, InstructionKind.SPILL):
                self.energy.record("sram_access")
                self.energy.record("register_access")
                stalls += 1
            elif instruction.kind is InstructionKind.NOP:
                stalls += 1

        cycles = max(max_finish, len(program.instructions)) + switch_penalty
        root = values.get(program.root_value) if program.root_value is not None else None
        utilization = (
            sum(pe.stats.active_node_ops for pe in self.pes)
            / max(1, sum(pe.stats.instructions for pe in self.pes) * self.config.nodes_per_pe)
        )
        return ExecutionReport(
            result=root,
            cycles=cycles,
            energy_j=self.energy.total_energy_j(),
            power_w=self.energy.average_power_w(cycles),
            utilization=utilization,
            instructions=len(program.instructions),
            stalls=stalls,
        )

    # ------------------------------------------------------- symbolic mode

    def run_symbolic(
        self,
        formula: CNF,
        solver: Optional[CDCLSolver] = None,
        record_events: bool = False,
        max_events: int = 2000,
    ) -> Tuple[SymbolicExecutionTrace, "CDCLSolver"]:
        """Solve ``formula`` and replay the BCP trace on the hardware.

        A software CDCL run produces the decision/implication/conflict
        event stream; the replay charges broadcast and reduction latency
        over the node tree, watch-list traversal cycles, FIFO
        serialization, and DMA exposure, honoring the ablation switches
        (linked-list layout, pipelined scheduling).
        """
        if solver is None:
            solver = CDCLSolver(record_trace=True)
        elif not solver.record_trace:
            solver.record_trace = True
        solver.solve(formula)
        return self._replay(formula, solver, record_events, max_events)

    def _replay(
        self,
        formula: CNF,
        solver: "CDCLSolver",
        record_events: bool,
        max_events: int,
    ) -> Tuple[SymbolicExecutionTrace, "CDCLSolver"]:
        """Charge hardware costs for an already-recorded CDCL trace."""
        for pe in self.pes:
            pe.set_mode(PEMode.SYMBOLIC)
        self.wl_unit.load_formula(formula)

        trace = SymbolicExecutionTrace()
        tree_hops = broadcast_cycles(Topology.TREE, self.config.leaves_per_pe)
        cycle = 0

        def log(unit: str, text: str) -> None:
            if record_events and len(trace.events) < max_events:
                trace.events.append(PipelineEvent(cycle, unit, text))

        pending_dma = None
        for event in solver.trace:
            if event.kind == "decide":
                trace.decisions += 1
                cycle += int(tree_hops)  # broadcast decision to leaves
                self.energy.record("network_hop", self.config.leaves_per_pe)
                self.energy.record("control_overhead")
                log("broadcast", f"decide literal {event.literal}")
                clauses, access = self.wl_unit.on_assignment(-event.literal)
                cycle += access if self.config.pipelined_scheduling else access * 2
                self.energy.record("logic_op", len(clauses))
                log("wl", f"{len(clauses)} watched clauses inspected")
            elif event.kind == "imply":
                trace.implications += 1
                # Implication returns through the reduction tree; queued
                # implications pipeline at one per cycle (Fig. 9).
                if self.fifo.is_empty:
                    cycle += int(tree_hops)
                else:
                    cycle += 1
                if not self.fifo.push(event.literal):
                    cycle += 1  # overflow stall, retry
                    self.fifo.pop()
                    self.fifo.push(event.literal)
                self.energy.record("fifo_op")
                self.energy.record("network_hop")
                log("reduction", f"imply literal {event.literal}")
                popped = self.fifo.pop()
                if popped is not None:
                    clauses, access = self.wl_unit.on_assignment(-popped[0])
                    if access > self.config.dram_latency_cycles:
                        # Local miss: DMA fetch, partially hidden by
                        # continuing to service the FIFO.
                        pending_dma = self.dma.issue(cycle, words=len(clauses) * 4 + 4)
                        hidden = min(len(self.fifo), self.config.dram_latency_cycles)
                        cycle += max(1, access - hidden)
                        log("dma", "watch-list miss, DMA fetch in flight")
                    else:
                        cycle += access if self.config.pipelined_scheduling else access * 2
                    self.energy.record("logic_op", max(len(clauses), 1))
            elif event.kind == "conflict":
                trace.conflicts += 1
                cycle += int(tree_hops)  # conflict propagates to the root
                dropped = self.fifo.flush()
                trace.fifo_flushes += 1
                if pending_dma is not None:
                    trace.dma_cancelled += self.dma.cancel_pending(cycle)
                    pending_dma = None
                cycle += 1  # priority control assertion
                self.energy.record("control_overhead", 2)
                log("control", f"conflict: flushed {dropped} pending implications")
            elif event.kind == "backjump":
                cycle += 2  # trail unwinding bookkeeping on the scalar PE
                log("control", f"backjump to level {event.level}")
            elif event.kind == "restart":
                cycle += self.config.pipeline_stages
                log("control", "restart")

        trace.cycles = cycle
        return trace, solver

    def run_symbolic_parallel(
        self,
        formula: CNF,
        cutoff_depth: int = 3,
    ) -> Tuple[SymbolicExecutionTrace, List[SymbolicExecutionTrace]]:
        """Cube-and-conquer across the PE array (Fig. 9 top).

        The lookahead DPLL phase splits the formula into cubes; each
        cube's CDCL conquer run replays on its own tree PE, so the
        chip-level makespan is the longest per-PE queue rather than the
        serial sum.  Returns (aggregate trace with the parallel
        makespan, per-cube traces).
        """
        from repro.logic.cube_and_conquer import CubeAndConquerSolver

        splitter = CubeAndConquerSolver(cutoff_depth=cutoff_depth)
        workloads = splitter.conquer_workloads(formula)
        per_cube: List[SymbolicExecutionTrace] = []
        pe_busy = [0] * self.config.num_pes
        aggregate = SymbolicExecutionTrace()
        for index, (cube, solver) in enumerate(workloads):
            worker = ReasonAccelerator(self.config)
            trace, _ = worker.run_symbolic_trace(formula, solver)
            per_cube.append(trace)
            self.energy.merge(worker.energy)
            # Greedy list scheduling onto the least-busy PE.
            target = min(range(len(pe_busy)), key=lambda p: pe_busy[p])
            pe_busy[target] += trace.cycles
            aggregate.decisions += trace.decisions
            aggregate.implications += trace.implications
            aggregate.conflicts += trace.conflicts
            aggregate.fifo_flushes += trace.fifo_flushes
        aggregate.cycles = max(pe_busy) if any(pe_busy) else 0
        return aggregate, per_cube

    def run_symbolic_trace(
        self,
        formula: CNF,
        solver: "CDCLSolver",
        record_events: bool = False,
        max_events: int = 2000,
    ) -> Tuple[SymbolicExecutionTrace, "CDCLSolver"]:
        """Replay an already-solved CDCL run (trace must be recorded)."""
        if not solver.trace and (
            solver.stats.decisions or solver.stats.propagations
        ):
            raise ValueError("solver was run without record_trace=True")
        return self._replay(formula, solver, record_events, max_events)

    # ------------------------------------------------------------- reports

    def report(self, cycles: int) -> Dict[str, float]:
        return {
            "cycles": cycles,
            "runtime_s": cycles * self.config.cycle_time_s,
            "energy_j": self.energy.total_energy_j(),
            "power_w": self.energy.average_power_w(cycles),
            "area_mm2": self.energy.area_mm2(),
        }
