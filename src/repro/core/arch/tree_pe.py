"""Reconfigurable tree PE: functional + cycle model (paper Sec. V-B).

One PE is a complete binary tree of nodes whose datapaths reconfigure
per VLIW instruction among three modes: PROBABILISTIC (sum/product
aggregation), SYMBOLIC (comparator/adder BCP datapath) and SPMSPM
(leaf multipliers + internal adders).  :meth:`TreePE.execute_config`
evaluates one placed block bottom-up; the cycle cost of one issue is
the pipeline depth, with per-level throughput of one block per cycle
once the pipeline is full.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.arch.config import ArchConfig
from repro.core.arch.energy import EnergyModel
from repro.core.compiler.program import TreeNodeConfig
from repro.core.dag.graph import OpType
from repro.trace.format import EventKind


class PEMode(enum.Enum):
    PROBABILISTIC = "probabilistic"
    SYMBOLIC = "symbolic"
    SPMSPM = "spmspm"


@dataclass
class PEStats:
    instructions: int = 0
    active_node_ops: int = 0
    forward_ops: int = 0
    mode_switches: int = 0

    def utilization(self, nodes_per_pe: int) -> float:
        issued = self.instructions * nodes_per_pe
        return 0.0 if issued == 0 else self.active_node_ops / issued


class TreePE:
    """One tree engine; stateless between instructions except statistics."""

    def __init__(self, config: ArchConfig, energy: Optional[EnergyModel] = None):
        self.config = config
        self.energy = energy
        self.stats = PEStats()
        self._mode: Optional[PEMode] = None
        # Opt-in binary event trace (repro.trace); set through
        # ReasonAccelerator.attach_trace.  None keeps execute_config on
        # its untraced path at the cost of one None check per block.
        self.trace = None

    def set_mode(self, mode: PEMode) -> None:
        """Reconfigure the datapath (free when already in the mode).

        With ``config.reconfigurable`` off, the ablation models a fixed-
        function array: mode switches require a pipeline drain charged
        by the accelerator as extra cycles (see ``mode_switch_penalty``).
        """
        if mode is not self._mode:
            self.stats.mode_switches += 1
            self._mode = mode

    @property
    def mode(self) -> Optional[PEMode]:
        return self._mode

    def mode_switch_penalty(self) -> int:
        """Extra cycles per switch when reconfiguration is disabled."""
        return 0 if self.config.reconfigurable else self.config.pipeline_stages * 4

    def execute_config(
        self,
        configs: Sequence[TreeNodeConfig],
        leaf_values: Dict[int, float],
    ) -> float:
        """Evaluate one placed block and return the root value.

        ``leaf_values`` maps PE leaf heap-positions to operand values.
        Unconfigured positions are inert; FORWARD nodes pass their
        single live child value upward.
        """
        self.stats.instructions += 1
        values: Dict[int, float] = dict(leaf_values)
        # Compiler placements arrive sorted ascending with unique
        # positions; reuse that order directly and only fall back to
        # the dedup + sort for arbitrary config lists.
        if all(a.position < b.position for a, b in zip(configs, configs[1:])):
            ordered = list(configs)
            ordered.reverse()
        else:
            by_position = {c.position: c for c in configs}
            ordered = [
                by_position[position]
                for position in sorted(by_position, reverse=True)
            ]
        forward_ops = 0
        logic_ops = 0
        alu_ops = 0
        logic_op_types = (OpType.AND, OpType.OR, OpType.NOT)
        values_get = values.get
        for config in ordered:
            position = config.position
            left = values_get(2 * position + 1)
            right = values_get(2 * position + 2)
            if config.is_forward:
                forward_ops += 1
                if position in values:
                    continue  # leaf-level forward: operand already injected
                live = left if left is not None else right
                if live is None:
                    raise ValueError(f"forward node {position} has no input")
                values[position] = live
                continue
            if config.op in logic_op_types:
                logic_ops += 1
            else:
                alu_ops += 1
            operands = [v for v in (left, right) if v is not None]
            if not operands:
                raise ValueError(f"op node {position} has no inputs")
            values[position] = _apply_op(config, operands)
        self.stats.forward_ops += forward_ops
        self.stats.active_node_ops += logic_ops + alu_ops
        if self.energy:
            self.energy.logic_op += logic_ops
            self.energy.alu_op += alu_ops
        if self.trace is not None:
            self.trace.emit(EventKind.PE_BLOCK, None, logic_ops + alu_ops, forward_ops)
        if 0 not in values:
            raise ValueError("block did not produce a root value")
        return values[0]

    def issue_cost_cycles(self, num_blocks: int, dependent: bool = False) -> int:
        """Cycle cost of issuing ``num_blocks`` consecutive blocks.

        Independent blocks stream at one per cycle after the pipeline
        fills; fully dependent chains pay the pipeline depth each.
        """
        stages = self.config.pipeline_stages
        if num_blocks <= 0:
            return 0
        if dependent:
            return num_blocks * stages
        return stages + (num_blocks - 1)


def _apply_op(config: TreeNodeConfig, operands: List[float]) -> float:
    op = config.op
    if op is OpType.SUM:
        weights = config.child_weights or tuple(1.0 for _ in operands)
        if len(weights) != len(operands):
            weights = tuple(1.0 for _ in operands)
        return sum(w * v for w, v in zip(weights, operands))
    if op is OpType.PRODUCT:
        out = 1.0
        for value in operands:
            out *= value
        return out
    if op is OpType.AND:
        return 1.0 if all(v > 0 for v in operands) else 0.0
    if op is OpType.OR:
        return 1.0 if any(v > 0 for v in operands) else 0.0
    if op is OpType.NOT:
        return 1.0 - operands[0]
    raise TypeError(f"op {op} not executable on a tree node")
