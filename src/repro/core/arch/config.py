"""Architecture configuration and the design-space-exploration axes.

The paper's DSE (Sec. V-F) sweeps tree depth D, register banks B and
registers per bank R, settling on (D=3, B=64, R=32); Fig. 10 fixes the
chip-level constants (12 PEs / 80 tree nodes, 1.25 MB SRAM, 104 GB/s
DRAM, 28 nm, 0.9 V, 500 MHz).  ``ArchConfig`` carries all of them plus
the ablation switches used by the evaluation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ArchConfig:
    """Parameters of one REASON instance.

    Attributes mirror the paper's template: a *PE* is one tree engine of
    ``2**tree_depth`` leaves (so ``2**(tree_depth+1) - 1`` nodes); the
    chip integrates ``num_pes`` of them behind a shared scratchpad.
    """

    tree_depth: int = 3  # D: levels below the root (8 leaves)
    num_banks: int = 64  # B: parallel register banks per PE
    regs_per_bank: int = 32  # R
    num_pes: int = 12
    frequency_hz: float = 500e6
    sram_kib: int = 1280  # 1.25 MB shared local memory
    sram_banks: int = 16
    dram_bandwidth_gbps: float = 104.0
    dram_latency_cycles: int = 100
    bcp_fifo_depth: int = 16
    tech_node_nm: int = 28
    voltage: float = 0.9
    # Ablation switches (Sec. VII-C hardware ablation)
    unified_engine: bool = True  # unified vs decoupled symbolic/probabilistic
    pipelined_scheduling: bool = True  # pipeline-aware reordering
    reconfigurable: bool = True  # per-cycle mode switching
    linked_list_layout: bool = True  # WLs linked-list SRAM layout

    @property
    def leaves_per_pe(self) -> int:
        return 2 ** self.tree_depth

    @property
    def nodes_per_pe(self) -> int:
        return 2 ** (self.tree_depth + 1) - 1

    @property
    def total_tree_nodes(self) -> int:
        return self.num_pes * self.nodes_per_pe

    @property
    def pipeline_stages(self) -> int:
        """Tree levels (plus operand fetch) acting as pipeline stages."""
        return self.tree_depth + 1

    @property
    def registers_total(self) -> int:
        return self.num_banks * self.regs_per_bank

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    def with_ablation(self, **switches: bool) -> "ArchConfig":
        """Copy with ablation switches flipped."""
        return replace(self, **switches)

    def describe(self) -> Dict[str, object]:
        return {
            "tree_depth": self.tree_depth,
            "num_banks": self.num_banks,
            "regs_per_bank": self.regs_per_bank,
            "num_pes": self.num_pes,
            "nodes_per_pe": self.nodes_per_pe,
            "frequency_mhz": self.frequency_hz / 1e6,
            "sram_kib": self.sram_kib,
            "tech_node_nm": self.tech_node_nm,
        }


#: The paper's selected configuration (Fig. 10 specification table).
DEFAULT_CONFIG = ArchConfig()


def dse_grid(
    depths: Tuple[int, ...] = (2, 3, 4),
    banks: Tuple[int, ...] = (16, 32, 64, 128),
    regs: Tuple[int, ...] = (16, 32, 64),
) -> List[ArchConfig]:
    """The (D, B, R) sweep grid of the paper's design space exploration."""
    grid = []
    for depth in depths:
        for bank in banks:
            for reg in regs:
                grid.append(replace(DEFAULT_CONFIG, tree_depth=depth, num_banks=bank, regs_per_bank=reg))
    return grid
