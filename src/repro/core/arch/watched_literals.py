"""Watched-literals unit with linked-list SRAM layout (paper Sec. V-D).

A head-pointer table indexed by literal id gives O(1) access to the
start of each watch list; clause records carry a next-watch pointer, so
lists thread through the linear SRAM address space.  Traversing a list
on assignment touches only the clauses watching that literal —
transforming BCP from a database scan into selective memory accesses.

With ``linked_list_layout`` disabled (ablation), every assignment scans
the full clause region instead, reproducing the ~22% runtime cost the
paper attributes to the memory layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.arch.config import ArchConfig
from repro.core.arch.memory import SramBanks
from repro.logic.cnf import CNF


@dataclass
class WlStats:
    head_lookups: int = 0
    list_traversal_steps: int = 0
    clause_fetches: int = 0
    full_scans: int = 0
    sram_words_touched: int = 0
    local_misses: int = 0


@dataclass
class _ClauseRecord:
    address: int
    literals: Tuple[int, ...]
    next_watch: Dict[int, Optional[int]]  # watched literal -> next clause addr
    resident: bool = True  # cached in local SRAM vs remote scratchpad/DRAM


class WatchedLiteralsUnit:
    """Hardware watch-list indexing over a clause database."""

    def __init__(
        self,
        config: ArchConfig,
        sram: Optional[SramBanks] = None,
        resident_fraction: float = 1.0,
    ):
        self.config = config
        self.sram = sram
        self.resident_fraction = resident_fraction
        self.stats = WlStats()
        self._head: Dict[int, Optional[int]] = {}
        self._records: Dict[int, _ClauseRecord] = {}
        self._next_address = 0
        self._num_clauses = 0

    def load_formula(self, formula: CNF) -> None:
        """Build head-pointer table and linked clause records.

        The first two literals of each clause are watched (clauses
        narrower than 2 watch everything they have).  Clauses beyond
        the resident fraction model the hierarchical scheme where cold
        clauses live in remote scratchpad/DRAM.
        """
        self._head = {}
        self._records = {}
        self._next_address = 0
        self._num_clauses = len(formula.clauses)
        resident_limit = int(self._num_clauses * self.resident_fraction)
        for index, clause in enumerate(formula.clauses):
            watched = clause.literals[:2] if len(clause) >= 2 else clause.literals
            record = _ClauseRecord(
                address=self._next_address,
                literals=clause.literals,
                next_watch={},
                resident=index < resident_limit,
            )
            for lit in watched:
                record.next_watch[lit] = self._head.get(lit)
                self._head[lit] = record.address
            self._records[record.address] = record
            # Clause storage: literals + one next pointer per watch.
            self._next_address += len(clause.literals) + len(watched)

    @property
    def sram_words(self) -> int:
        """Words of SRAM the layout occupies (head table + records)."""
        return len(self._head) + self._next_address

    def on_assignment(self, literal: int) -> Tuple[List[Tuple[int, ...]], int]:
        """Clauses to inspect when ``literal`` becomes false.

        Returns (clauses, access_cycles).  With the linked-list layout a
        head lookup plus one hop per clause on the watch list; without
        it (ablation) a full scan of the clause database.
        """
        if not self.config.linked_list_layout:
            self.stats.full_scans += 1
            clauses = [
                record.literals
                for record in self._records.values()
                if literal in record.literals[:2]
            ]
            words = self._next_address
            self.stats.sram_words_touched += words
            self.stats.clause_fetches += len(clauses)
            if self.sram:
                for i in range(0, max(words, 1), 16):
                    self.sram.read(i % self.config.sram_banks, 1)
            # Scanning cost: clause database size / bank parallelism.
            return clauses, max(1, words // (2 * self.config.sram_banks))

        self.stats.head_lookups += 1
        address = self._head.get(literal)
        clauses: List[Tuple[int, ...]] = []
        cycles = 1  # head-pointer table access
        misses = 0
        while address is not None:
            record = self._records[address]
            self.stats.list_traversal_steps += 1
            self.stats.clause_fetches += 1
            words = len(record.literals) + 1
            self.stats.sram_words_touched += words
            if self.sram:
                self.sram.read(address % self.config.sram_banks, 1)
            if not record.resident:
                misses += 1
                self.stats.local_misses += 1
            clauses.append(record.literals)
            cycles += 1
            address = record.next_watch.get(literal)
        return clauses, cycles + misses * self.config.dram_latency_cycles

    def watch_list_length(self, literal: int) -> int:
        length = 0
        address = self._head.get(literal)
        while address is not None:
            length += 1
            address = self._records[address].next_watch.get(literal)
        return length
