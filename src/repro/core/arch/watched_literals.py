"""Watched-literals unit with linked-list SRAM layout (paper Sec. V-D).

A head-pointer table indexed by literal id gives O(1) access to the
start of each watch list; clause records carry a next-watch pointer, so
lists thread through the linear SRAM address space.  Traversing a list
on assignment touches only the clauses watching that literal —
transforming BCP from a database scan into selective memory accesses.

With ``linked_list_layout`` disabled (ablation), every assignment scans
the full clause region instead, reproducing the ~22% runtime cost the
paper attributes to the memory layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.arch.config import ArchConfig
from repro.core.arch.memory import SramBanks
from repro.logic.cnf import CNF


@dataclass
class WlStats:
    head_lookups: int = 0
    list_traversal_steps: int = 0
    clause_fetches: int = 0
    full_scans: int = 0
    sram_words_touched: int = 0
    local_misses: int = 0


@dataclass
class _ClauseRecord:
    address: int
    literals: Tuple[int, ...]
    next_watch: Dict[int, Optional[int]]  # watched literal -> next clause addr
    resident: bool = True  # cached in local SRAM vs remote scratchpad/DRAM


@dataclass(frozen=True)
class WatchSummary:
    """Precomputed outcome of traversing one literal's watch list.

    Watch lists are static between :meth:`WatchedLiteralsUnit.load_formula`
    calls, so the clause list, cycle cost and per-bank SRAM read pattern
    of an assignment are pure functions of the literal — computed once,
    then replayed as O(1) aggregate accounting per event.
    """

    clauses: Tuple[Tuple[int, ...], ...]
    access_cycles: int
    words_touched: int
    misses: int
    bank_reads: Tuple[Tuple[int, int], ...]  # (bank, words) pairs
    full_scan: bool = False


class WatchedLiteralsUnit:
    """Hardware watch-list indexing over a clause database."""

    def __init__(
        self,
        config: ArchConfig,
        sram: Optional[SramBanks] = None,
        resident_fraction: float = 1.0,
    ):
        self.config = config
        self.sram = sram
        self.resident_fraction = resident_fraction
        self.stats = WlStats()
        self._head: Dict[int, Optional[int]] = {}
        self._records: Dict[int, _ClauseRecord] = {}
        self._next_address = 0
        self._num_clauses = 0
        self._summaries: Dict[int, WatchSummary] = {}
        self._scan_banks: Optional[Tuple[Tuple[int, int], ...]] = None

    def load_formula(self, formula: CNF) -> None:
        """Build head-pointer table and linked clause records.

        The first two literals of each clause are watched (clauses
        narrower than 2 watch everything they have).  Clauses beyond
        the resident fraction model the hierarchical scheme where cold
        clauses live in remote scratchpad/DRAM.
        """
        self._head = {}
        self._records = {}
        self._next_address = 0
        self._num_clauses = len(formula.clauses)
        self._summaries = {}
        self._scan_banks = None
        resident_limit = int(self._num_clauses * self.resident_fraction)
        for index, clause in enumerate(formula.clauses):
            watched = clause.literals[:2] if len(clause) >= 2 else clause.literals
            record = _ClauseRecord(
                address=self._next_address,
                literals=clause.literals,
                next_watch={},
                resident=index < resident_limit,
            )
            for lit in watched:
                record.next_watch[lit] = self._head.get(lit)
                self._head[lit] = record.address
            self._records[record.address] = record
            # Clause storage: literals + one next pointer per watch.
            self._next_address += len(clause.literals) + len(watched)

    @property
    def sram_words(self) -> int:
        """Words of SRAM the layout occupies (head table + records)."""
        return len(self._head) + self._next_address

    def summary_for(self, literal: int) -> WatchSummary:
        """The (cached) traversal outcome for ``literal`` becoming false.

        Pure: computes the clause list, cycle cost and SRAM read pattern
        without charging any statistics or energy — callers account via
        :meth:`charge` (single event) or :meth:`charge_bulk` (aggregated
        over a batch of assignments).
        """
        summary = self._summaries.get(literal)
        if summary is not None:
            return summary
        banks = self.config.sram_banks
        if not self.config.linked_list_layout:
            clauses = tuple(
                record.literals
                for record in self._records.values()
                if literal in record.literals[:2]
            )
            words = self._next_address
            if self._scan_banks is None:
                pattern: Dict[int, int] = {}
                for i in range(0, max(words, 1), 16):
                    bank = (i % banks) % max(banks, 1)
                    pattern[bank] = pattern.get(bank, 0) + 1
                self._scan_banks = tuple(pattern.items())
            summary = WatchSummary(
                clauses=clauses,
                # Scanning cost: clause database size / bank parallelism.
                access_cycles=max(1, words // (2 * banks)),
                words_touched=words,
                misses=0,
                bank_reads=self._scan_banks,
                full_scan=True,
            )
        else:
            address = self._head.get(literal)
            clauses_list: List[Tuple[int, ...]] = []
            words = 0
            misses = 0
            reads: Dict[int, int] = {}
            while address is not None:
                record = self._records[address]
                words += len(record.literals) + 1
                bank = (address % banks) % max(banks, 1)
                reads[bank] = reads.get(bank, 0) + 1
                if not record.resident:
                    misses += 1
                clauses_list.append(record.literals)
                address = record.next_watch.get(literal)
            summary = WatchSummary(
                clauses=tuple(clauses_list),
                # Head-pointer access, one hop per clause, DRAM per miss.
                access_cycles=1
                + len(clauses_list)
                + misses * self.config.dram_latency_cycles,
                words_touched=words,
                misses=misses,
                bank_reads=tuple(reads.items()),
            )
        self._summaries[literal] = summary
        return summary

    def charge(self, summary: WatchSummary) -> None:
        """Account one assignment's traversal (stats + SRAM energy)."""
        num = len(summary.clauses)
        if summary.full_scan:
            self.stats.full_scans += 1
        else:
            self.stats.head_lookups += 1
            self.stats.list_traversal_steps += num
            self.stats.local_misses += summary.misses
        self.stats.clause_fetches += num
        self.stats.sram_words_touched += summary.words_touched
        if self.sram:
            self.sram.read_batch(dict(summary.bank_reads))

    def charge_bulk(
        self,
        head_lookups: int,
        traversal_steps: int,
        clause_fetches: int,
        words_touched: int,
        misses: int,
        full_scans: int,
        bank_reads: Optional[Dict[int, int]] = None,
    ) -> None:
        """Aggregate accounting for a whole batch of assignments.

        The per-event counters are additive and SRAM conflict accounting
        telescopes per bank, so charging a batch in one call yields
        exactly the same statistics and energy as per-event charging.
        """
        self.stats.head_lookups += head_lookups
        self.stats.list_traversal_steps += traversal_steps
        self.stats.clause_fetches += clause_fetches
        self.stats.sram_words_touched += words_touched
        self.stats.local_misses += misses
        self.stats.full_scans += full_scans
        if self.sram and bank_reads:
            self.sram.read_batch(bank_reads)

    def on_assignment(self, literal: int) -> Tuple[List[Tuple[int, ...]], int]:
        """Clauses to inspect when ``literal`` becomes false.

        Returns (clauses, access_cycles).  With the linked-list layout a
        head lookup plus one hop per clause on the watch list; without
        it (ablation) a full scan of the clause database.
        """
        summary = self.summary_for(literal)
        self.charge(summary)
        return list(summary.clauses), summary.access_cycles

    def watch_list_length(self, literal: int) -> int:
        length = 0
        address = self._head.get(literal)
        while address is not None:
            length += 1
            address = self._records[address].next_watch.get(literal)
        return length
