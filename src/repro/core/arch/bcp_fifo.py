"""The BCP FIFO (paper Fig. 6(e), Sec. V-D).

Leaf tree-nodes can discover several implications in one cycle, but BCP
must propagate them sequentially to preserve the causality chain for
conflict analysis.  The FIFO serializes them: one implication broadcasts
immediately, the rest queue.  On a conflict the controller flushes all
pending implications from the now-invalid search path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple


@dataclass
class FifoStats:
    pushes: int = 0
    pops: int = 0
    flushes: int = 0
    entries_flushed: int = 0
    max_occupancy: int = 0
    overflow_stalls: int = 0


class BcpFifo:
    """Bounded FIFO of pending implications (literal, reason-clause id)."""

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError("FIFO depth must be positive")
        self.depth = depth
        self._queue: Deque[Tuple[int, int]] = deque()
        self.stats = FifoStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.depth

    def push(self, literal: int, reason: int = -1) -> bool:
        """Queue an implication; returns False (and counts a stall) when
        the FIFO is full — the producer must retry next cycle."""
        if self.is_full:
            self.stats.overflow_stalls += 1
            return False
        self._queue.append((literal, reason))
        self.stats.pushes += 1
        self.stats.max_occupancy = max(self.stats.max_occupancy, len(self._queue))
        return True

    def pop(self) -> Optional[Tuple[int, int]]:
        if not self._queue:
            return None
        self.stats.pops += 1
        return self._queue.popleft()

    def flush(self) -> int:
        """Discard all pending implications (conflict handling).

        Returns the number of entries dropped."""
        dropped = len(self._queue)
        self._queue.clear()
        self.stats.flushes += 1
        self.stats.entries_flushed += dropped
        return dropped

    def snapshot(self) -> List[Tuple[int, int]]:
        return list(self._queue)
