"""SpMSpM mode: sparse × sparse matrix multiplication on the tree PEs
(paper Sec. V-B, third operational mode).

Leaf nodes act as multipliers over matched nonzero pairs; internal
nodes reduce partial products — the MAERI/Flexagon-style execution the
tree array inherits.  This extends REASON beyond symbolic/probabilistic
kernels to small neural (or neural-symbolic) layers, which is how the
Fig. 13 neural-ops comparison runs on REASON.

The functional layer uses a CSR representation and an inner-product
dataflow: output row i, column j reduces Σ_k A[i,k]·B[k,j] over the
intersection of A's row-i and B's column-j nonzeros.  The cycle model
charges one tree pass per ``leaves_per_pe`` products, pipelined across
PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.arch.config import ArchConfig, DEFAULT_CONFIG
from repro.core.arch.energy import EnergyModel


@dataclass
class CsrMatrix:
    """Compressed sparse row matrix (float values)."""

    shape: Tuple[int, int]
    indptr: List[int]
    indices: List[int]
    data: List[float]

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CsrMatrix":
        dense = np.asarray(dense, dtype=float)
        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for row in dense:
            for col, value in enumerate(row):
                if value != 0.0:
                    indices.append(col)
                    data.append(float(value))
            indptr.append(len(indices))
        return CsrMatrix(dense.shape, indptr, indices, data)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        for row in range(self.shape[0]):
            for pos in range(self.indptr[row], self.indptr[row + 1]):
                out[row, self.indices[pos]] = self.data[pos]
        return out

    @property
    def nnz(self) -> int:
        return len(self.data)

    def row(self, i: int) -> List[Tuple[int, float]]:
        return [
            (self.indices[p], self.data[p])
            for p in range(self.indptr[i], self.indptr[i + 1])
        ]

    @staticmethod
    def random(
        rows: int, cols: int, density: float = 0.2, seed: Optional[int] = None
    ) -> "CsrMatrix":
        rng = np.random.default_rng(seed)
        mask = rng.random((rows, cols)) < density
        dense = np.where(mask, rng.normal(size=(rows, cols)), 0.0)
        return CsrMatrix.from_dense(dense)


@dataclass
class SpmspmReport:
    """Cost account of one sparse multiply on the array."""

    multiplies: int = 0
    reductions: int = 0
    tree_passes: int = 0
    cycles: int = 0
    output_nnz: int = 0

    @property
    def utilization(self) -> float:
        issued = self.tree_passes
        if issued == 0:
            return 0.0
        return self.multiplies / issued  # products per pass, vs leaf count


class SpmspmEngine:
    """Sparse matrix-matrix multiplication on the REASON tree array."""

    def __init__(self, config: ArchConfig = DEFAULT_CONFIG, energy: Optional[EnergyModel] = None):
        self.config = config
        self.energy = energy or EnergyModel(config=config)

    def multiply(self, a: CsrMatrix, b: CsrMatrix) -> Tuple[CsrMatrix, SpmspmReport]:
        """C = A·B with per-pass cost accounting.

        Row-wise Gustavson dataflow: each nonzero A[i,k] scales B's row
        k; the tree reduces per-column partial products.  A tree pass
        handles up to ``leaves_per_pe`` products; passes pipeline across
        the ``num_pes`` engines at one per cycle each once full.
        """
        if a.shape[1] != b.shape[0]:
            raise ValueError("inner dimensions do not match")
        report = SpmspmReport()
        rows_out: List[Dict[int, float]] = []
        for i in range(a.shape[0]):
            accumulator: Dict[int, float] = {}
            for k, a_val in a.row(i):
                for j, b_val in b.row(k):
                    accumulator[j] = accumulator.get(j, 0.0) + a_val * b_val
                    report.multiplies += 1
                    report.reductions += 1
            rows_out.append(accumulator)

        # Cost model: products stream through the leaves.
        leaves = self.config.leaves_per_pe
        report.tree_passes = -(-report.multiplies // leaves) if report.multiplies else 0
        pipelined = -(-report.tree_passes // self.config.num_pes)
        report.cycles = self.config.pipeline_stages + max(pipelined - 1, 0)
        self.energy.record("alu_op", report.multiplies + report.reductions)
        self.energy.record("sram_access", a.nnz + b.nnz)

        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for accumulator in rows_out:
            for j in sorted(accumulator):
                value = accumulator[j]
                if value != 0.0:
                    indices.append(j)
                    data.append(value)
            indptr.append(len(indices))
        result = CsrMatrix((a.shape[0], b.shape[1]), indptr, indices, data)
        report.output_nnz = result.nnz
        return result, report

    def dense_equivalent_flops(self, a: CsrMatrix, b: CsrMatrix) -> int:
        """FLOPs a dense engine would spend on the same shapes."""
        m, k = a.shape
        _, n = b.shape
        return 2 * m * k * n
