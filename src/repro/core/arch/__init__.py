"""REASON hardware architecture model (paper Sec. V).

A parameterized, event-driven model of the accelerator: reconfigurable
tree-based PEs with three execution modes, a Benes input crossbar,
banked register files and SRAM, a watched-literals memory unit with
linked-list layout, a BCP FIFO, inter-node interconnect topologies, and
an analytical area/energy model with technology scaling.
"""

from repro.core.arch.config import ArchConfig, DEFAULT_CONFIG
from repro.core.arch.benes import BenesNetwork
from repro.core.arch.interconnect import (
    Topology,
    broadcast_cycles,
    traversal_latency,
    area_breakdown,
)
from repro.core.arch.energy import (
    EnergyModel,
    TechNode,
    scale_to_node,
    unified_vs_decoupled,
)
from repro.core.arch.spmspm import CsrMatrix, SpmspmEngine
from repro.core.arch.memory import SramBanks, Scratchpad, DmaEngine
from repro.core.arch.bcp_fifo import BcpFifo
from repro.core.arch.watched_literals import WatchedLiteralsUnit
from repro.core.arch.tree_pe import TreePE, PEMode
from repro.core.arch.accelerator import (
    ReasonAccelerator,
    ExecutionReport,
    SymbolicExecutionTrace,
)

__all__ = [
    "ArchConfig",
    "DEFAULT_CONFIG",
    "BenesNetwork",
    "Topology",
    "broadcast_cycles",
    "traversal_latency",
    "area_breakdown",
    "EnergyModel",
    "TechNode",
    "scale_to_node",
    "unified_vs_decoupled",
    "CsrMatrix",
    "SpmspmEngine",
    "SramBanks",
    "Scratchpad",
    "DmaEngine",
    "BcpFifo",
    "WatchedLiteralsUnit",
    "TreePE",
    "PEMode",
    "ReasonAccelerator",
    "ExecutionReport",
    "SymbolicExecutionTrace",
]
