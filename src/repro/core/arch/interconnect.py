"""Inter-node interconnect topology models (paper Fig. 8).

Three candidate topologies connect the tree-node array: REASON's binary
tree (O(log N) broadcast), a 2-D mesh (O(√N)), and an all-to-one bus
(O(N) due to fan-out buffering).  The models below reproduce the
broadcast-to-root cycle counts of Fig. 8(b) and the latency/area
breakdown of Fig. 8(a): memory, PE and periphery latency grow linearly
with the leaf count while the inter-node component scales per topology.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


class Topology(enum.Enum):
    TREE = "tree"
    MESH = "mesh"
    ALL_TO_ONE = "all-to-one"


#: Relative per-hop cost used by the latency model.  The bus pays extra
#: per endpoint for fan-out buffer insertion (post-layout hold fixes the
#: paper cites); the mesh pays per-router arbitration.
_HOP_CYCLES = {
    Topology.TREE: 1.0,
    Topology.MESH: 1.2,
    Topology.ALL_TO_ONE: 0.5,  # single wire segment, but O(N) segments
}


def broadcast_cycles(topology: Topology, num_leaves: int) -> float:
    """Cycles for a root-to-leaf broadcast reaching all ``num_leaves``.

    Tree: O(log N); mesh: O(√N); all-to-one bus: O(N).
    """
    if num_leaves < 1:
        raise ValueError("need at least one leaf")
    if topology is Topology.TREE:
        hops = math.ceil(math.log2(num_leaves)) if num_leaves > 1 else 1
    elif topology is Topology.MESH:
        side = math.ceil(math.sqrt(num_leaves))
        hops = 2 * side - 1  # Manhattan radius of the farthest corner
    else:
        hops = num_leaves  # serialized bus segments with buffer repeaters
    return hops * _HOP_CYCLES[topology]


@dataclass
class LatencyBreakdown:
    """Normalized latency components of Fig. 8(a)."""

    memory: float
    pe: float
    peripheries: float
    inter_node: float

    @property
    def total(self) -> float:
        return self.memory + self.pe + self.peripheries + self.inter_node

    def as_dict(self) -> Dict[str, float]:
        return {
            "memory": self.memory,
            "pe": self.pe,
            "peripheries": self.peripheries,
            "inter_node": self.inter_node,
        }


def traversal_latency(topology: Topology, num_leaves: int, base_leaves: int = 8) -> LatencyBreakdown:
    """Latency breakdown for one reduction pass over ``num_leaves``.

    Components are normalized so the TREE topology at ``base_leaves``
    totals 1.0; memory/PE/periphery terms are topology-independent
    (they scale with the array size), only the inter-node term differs.
    """
    scale = num_leaves / base_leaves
    memory = 0.35 * scale ** 0.5  # wider arrays amortize banked accesses
    pe = 0.30
    peripheries = 0.15 * scale ** 0.25
    inter = broadcast_cycles(topology, num_leaves) / broadcast_cycles(Topology.TREE, base_leaves) * 0.20
    return LatencyBreakdown(memory, pe, peripheries, inter)


def area_breakdown(topology: Topology, num_leaves: int) -> Dict[str, float]:
    """Relative interconnect area: wires + buffers per topology."""
    if topology is Topology.TREE:
        wires = 2.0 * (num_leaves - 1)
        buffers = num_leaves - 1
    elif topology is Topology.MESH:
        side = math.ceil(math.sqrt(num_leaves))
        wires = 2.0 * side * (side - 1) * 2
        buffers = num_leaves  # one router buffer per node
    else:
        wires = float(num_leaves)
        buffers = 2.0 * num_leaves  # hold-fix buffer insertion dominates
    return {"wires": wires, "buffers": buffers, "total": wires + buffers}


def scalability_series(
    topologies: Sequence[Topology],
    leaf_counts: Sequence[int],
) -> Dict[str, List[float]]:
    """Fig. 8(b) data: normalized broadcast cycles per topology/size."""
    base = broadcast_cycles(Topology.TREE, leaf_counts[0])
    out: Dict[str, List[float]] = {}
    for topology in topologies:
        out[topology.value] = [
            broadcast_cycles(topology, n) / base for n in leaf_counts
        ]
    return out
