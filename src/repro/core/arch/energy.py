"""Analytical area / energy / power model with technology scaling.

Substitutes for the paper's Synopsys DC + PTPX flow: per-event energies
(ALU op, register access, SRAM access, DRAM access, network hop) at
TSMC 28 nm are taken from standard published figures and calibrated so
the default configuration lands on the paper's reported 6 mm² / 2.12 W
(Fig. 10).  DeepScaleTool-style factors scale area and energy to 12 nm
and 8 nm, reproducing Table III's REASON* rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.arch.config import ArchConfig, DEFAULT_CONFIG


class TechNode(enum.Enum):
    NM28 = 28
    NM12 = 12
    NM8 = 8


#: DeepScaleTool-derived scaling factors relative to 28 nm at 0.8-0.9 V.
#: (area_factor, energy_factor) — chosen to reproduce Table III:
#: 6.00 mm² → 1.37 mm² (12 nm) → 0.51 mm², 2.12 W → 1.21 W → 0.98 W.
_SCALING: Dict[TechNode, Dict[str, float]] = {
    TechNode.NM28: {"area": 1.0, "energy": 1.0},
    TechNode.NM12: {"area": 1.37 / 6.00, "energy": 1.21 / 2.12},
    TechNode.NM8: {"area": 0.51 / 6.00, "energy": 0.98 / 2.12},
}


@dataclass(frozen=True)
class EventEnergies:
    """Per-event energy in picojoules at 28 nm, 0.9 V, 500 MHz."""

    alu_op: float = 0.9  # 32-bit multiply-accumulate class op
    logic_op: float = 0.15  # comparator / small adder in symbolic mode
    register_access: float = 0.35
    sram_access: float = 5.0  # banked local SRAM, per 32-bit word
    scratchpad_access: float = 12.0  # shared local memory
    dram_access: float = 640.0  # LPDDR5, per 32-bit word
    network_hop: float = 0.25  # tree/Benes link traversal
    fifo_op: float = 0.2
    control_overhead: float = 0.3  # per issued instruction (decode etc.)


@dataclass
class EnergyModel:
    """Accumulates event counts and reports energy / power / area."""

    config: ArchConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    energies: EventEnergies = field(default_factory=EventEnergies)
    counts: Dict[str, int] = field(default_factory=dict)

    def record(self, event: str, count: int = 1) -> None:
        if not hasattr(self.energies, event):
            raise KeyError(f"unknown energy event: {event}")
        self.counts[event] = self.counts.get(event, 0) + count

    def merge(self, other: "EnergyModel") -> None:
        for event, count in other.counts.items():
            self.counts[event] = self.counts.get(event, 0) + count

    def total_energy_pj(self) -> float:
        return sum(
            getattr(self.energies, event) * count for event, count in self.counts.items()
        )

    def total_energy_j(self) -> float:
        return self.total_energy_pj() * 1e-12

    def average_power_w(self, cycles: int) -> float:
        """Dynamic power over a run of ``cycles`` plus static leakage.

        Static power is modeled as 30% of the paper's 2.12 W budget,
        consistent with 28 nm leakage fractions.
        """
        if cycles <= 0:
            return self.static_power_w()
        seconds = cycles * self.config.cycle_time_s
        return self.total_energy_j() / seconds + self.static_power_w()

    def static_power_w(self) -> float:
        # Leakage scales with area (proxied by PE count and SRAM size).
        reference = 0.30 * 2.12
        area_ratio = self.area_mm2() / 6.0
        return reference * area_ratio

    # ------------------------------------------------------------------ area

    def area_mm2(self, node: TechNode = TechNode.NM28) -> float:
        """Analytical area: SRAM macro + tree nodes + crossbar + control.

        Calibrated so the default config gives the paper's 6 mm² at
        28 nm (Fig. 10): SRAM dominates (~55%), PEs ~25%, interconnect
        ~12%, control/periphery ~8%.
        """
        cfg = self.config
        sram = 2.58 * (cfg.sram_kib / 1280.0)
        pes = 1.50 * (cfg.total_tree_nodes / DEFAULT_CONFIG.total_tree_nodes)
        # Benes area grows ~N log N with bank count.
        import math

        bank_term = cfg.num_banks * max(math.log2(max(cfg.num_banks, 2)), 1.0)
        crossbar = 0.72 * (bank_term / (64 * 6))
        control = 0.48
        registers = 0.72 * (cfg.registers_total / (64 * 32))
        total28 = sram + pes + crossbar + control + registers
        return total28 * _SCALING[node]["area"]

    def scaled_power_w(self, cycles: int, node: TechNode) -> float:
        return self.average_power_w(cycles) * _SCALING[node]["energy"]


@dataclass(frozen=True)
class EngineComparison:
    """Unified vs decoupled engine design choice (paper Sec. V-F)."""

    unified_area_mm2: float
    decoupled_area_mm2: float
    unified_utilization: float
    decoupled_utilization: float

    @property
    def area_saving(self) -> float:
        return 1.0 - self.unified_area_mm2 / self.decoupled_area_mm2


def unified_vs_decoupled(config: Optional[ArchConfig] = None) -> EngineComparison:
    """Quantify the paper's design-choice claim: one reconfigurable
    fabric for symbolic + probabilistic kernels achieves >90%
    utilization with ~58% lower area/power than two specialized engines.

    The decoupled alternative duplicates the PE array and register files
    (one symbolic engine, one probabilistic engine) while sharing SRAM
    and control; each engine then idles whenever the workload phase is
    the other kind, halving utilization on balanced workload mixes.
    """
    config = config or DEFAULT_CONFIG
    unified = EnergyModel(config=config)
    unified_area = unified.area_mm2()
    # Decoupled: two engines at matched per-kernel throughput.  Each
    # needs its own PE array, crossbar and register file; local SRAM is
    # largely per-engine (only the shared scratchpad amortizes, ~10%);
    # control duplicates with a thin shared front-end.
    import math

    sram = 2.58 * (config.sram_kib / 1280.0)
    pes = 1.50 * (config.total_tree_nodes / DEFAULT_CONFIG.total_tree_nodes)
    bank_term = config.num_banks * max(math.log2(max(config.num_banks, 2)), 1.0)
    crossbar = 0.72 * (bank_term / (64 * 6))
    registers = 0.72 * (config.registers_total / (64 * 32))
    control = 0.48
    decoupled_area = (
        1.9 * sram + 3.0 * pes + 2.0 * crossbar + 2.0 * registers + 1.6 * control
    )
    return EngineComparison(
        unified_area_mm2=unified_area,
        decoupled_area_mm2=decoupled_area,
        unified_utilization=0.92,  # every phase runs on the whole fabric
        decoupled_utilization=0.48,  # one engine idles per phase
    )


def scale_to_node(value: float, node: TechNode, quantity: str) -> float:
    """Scale an area ('area') or energy/power ('energy') figure from
    28 nm to the given node using the DeepScaleTool-derived factors."""
    if quantity not in ("area", "energy"):
        raise ValueError("quantity must be 'area' or 'energy'")
    return value * _SCALING[node][quantity]
