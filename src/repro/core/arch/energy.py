"""Analytical area / energy / power model with technology scaling.

Substitutes for the paper's Synopsys DC + PTPX flow: per-event energies
(ALU op, register access, SRAM access, DRAM access, network hop) at
TSMC 28 nm are taken from standard published figures and calibrated so
the default configuration lands on the paper's reported 6 mm² / 2.12 W
(Fig. 10).  DeepScaleTool-style factors scale area and energy to 12 nm
and 8 nm, reproducing Table III's REASON* rows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.arch.config import ArchConfig, DEFAULT_CONFIG


class TechNode(enum.Enum):
    NM28 = 28
    NM12 = 12
    NM8 = 8


#: DeepScaleTool-derived scaling factors relative to 28 nm at 0.8-0.9 V.
#: (area_factor, energy_factor) — chosen to reproduce Table III:
#: 6.00 mm² → 1.37 mm² (12 nm) → 0.51 mm², 2.12 W → 1.21 W → 0.98 W.
_SCALING: Dict[TechNode, Dict[str, float]] = {
    TechNode.NM28: {"area": 1.0, "energy": 1.0},
    TechNode.NM12: {"area": 1.37 / 6.00, "energy": 1.21 / 2.12},
    TechNode.NM8: {"area": 0.51 / 6.00, "energy": 0.98 / 2.12},
}


@dataclass(frozen=True)
class EventEnergies:
    """Per-event energy in picojoules at 28 nm, 0.9 V, 500 MHz."""

    alu_op: float = 0.9  # 32-bit multiply-accumulate class op
    logic_op: float = 0.15  # comparator / small adder in symbolic mode
    register_access: float = 0.35
    sram_access: float = 5.0  # banked local SRAM, per 32-bit word
    scratchpad_access: float = 12.0  # shared local memory
    dram_access: float = 640.0  # LPDDR5, per 32-bit word
    network_hop: float = 0.25  # tree/Benes link traversal
    fifo_op: float = 0.2
    control_overhead: float = 0.3  # per issued instruction (decode etc.)


#: Canonical event order: the :class:`EventEnergies` fields.  Energy
#: totals always sum in this order so they are deterministic regardless
#: of the order events were recorded in.
EVENT_NAMES: Tuple[str, ...] = (
    "alu_op",
    "logic_op",
    "register_access",
    "sram_access",
    "scratchpad_access",
    "dram_access",
    "network_hop",
    "fifo_op",
    "control_overhead",
)
_EVENT_SET = frozenset(EVENT_NAMES)


class EnergyModel:
    """Accumulates event counts and reports energy / power / area.

    Counters are plain ``int`` attributes (one per event in
    :data:`EVENT_NAMES`), so hot loops can accumulate locally and flush
    with a single ``model.sram_access += n`` instead of paying a method
    call and a ``hasattr`` check per event.  :meth:`record` /
    :meth:`record_many` remain the validated general-purpose API.
    """

    __slots__ = ("config", "energies") + EVENT_NAMES

    def __init__(
        self,
        config: Optional[ArchConfig] = None,
        energies: Optional[EventEnergies] = None,
    ):
        self.config = DEFAULT_CONFIG if config is None else config
        self.energies = EventEnergies() if energies is None else energies
        self.alu_op = 0
        self.logic_op = 0
        self.register_access = 0
        self.sram_access = 0
        self.scratchpad_access = 0
        self.dram_access = 0
        self.network_hop = 0
        self.fifo_op = 0
        self.control_overhead = 0

    @property
    def counts(self) -> Dict[str, int]:
        """Non-zero event counts (compatibility view of the counters)."""
        return {
            event: count
            for event in EVENT_NAMES
            if (count := getattr(self, event))
        }

    def record(self, event: str, count: int = 1) -> None:
        if event not in _EVENT_SET:
            raise KeyError(
                f"unknown energy event: {event!r} "
                f"(valid events: {', '.join(EVENT_NAMES)})"
            )
        setattr(self, event, getattr(self, event) + count)

    def record_many(self, items: Iterable[Tuple[str, int]]) -> None:
        """Batch-accumulate ``(event, count)`` pairs in one call.

        Atomic with respect to validation: every name is checked before
        any counter moves, so a typo mid-batch leaves the model
        untouched instead of half-applied.
        """
        items = list(items)
        for event, _ in items:
            if event not in _EVENT_SET:
                raise KeyError(
                    f"unknown energy event: {event!r} "
                    f"(valid events: {', '.join(EVENT_NAMES)})"
                )
        for event, count in items:
            setattr(self, event, getattr(self, event) + count)

    def merge(self, other: "EnergyModel") -> None:
        for event in EVENT_NAMES:
            count = getattr(other, event)
            if count:
                setattr(self, event, getattr(self, event) + count)

    def total_energy_pj(self) -> float:
        e = self.energies
        return (
            e.alu_op * self.alu_op
            + e.logic_op * self.logic_op
            + e.register_access * self.register_access
            + e.sram_access * self.sram_access
            + e.scratchpad_access * self.scratchpad_access
            + e.dram_access * self.dram_access
            + e.network_hop * self.network_hop
            + e.fifo_op * self.fifo_op
            + e.control_overhead * self.control_overhead
        )

    def total_energy_j(self) -> float:
        return self.total_energy_pj() * 1e-12

    def average_power_w(self, cycles: int) -> float:
        """Dynamic power over a run of ``cycles`` plus static leakage.

        Static power is modeled as 30% of the paper's 2.12 W budget,
        consistent with 28 nm leakage fractions.
        """
        if cycles <= 0:
            return self.static_power_w()
        seconds = cycles * self.config.cycle_time_s
        return self.total_energy_j() / seconds + self.static_power_w()

    def static_power_w(self) -> float:
        # Leakage scales with area (proxied by PE count and SRAM size).
        reference = 0.30 * 2.12
        area_ratio = self.area_mm2() / 6.0
        return reference * area_ratio

    # ------------------------------------------------------------------ area

    def area_mm2(self, node: TechNode = TechNode.NM28) -> float:
        """Analytical area: SRAM macro + tree nodes + crossbar + control.

        Calibrated so the default config gives the paper's 6 mm² at
        28 nm (Fig. 10): SRAM dominates (~55%), PEs ~25%, interconnect
        ~12%, control/periphery ~8%.
        """
        cfg = self.config
        sram = 2.58 * (cfg.sram_kib / 1280.0)
        pes = 1.50 * (cfg.total_tree_nodes / DEFAULT_CONFIG.total_tree_nodes)
        # Benes area grows ~N log N with bank count.
        import math

        bank_term = cfg.num_banks * max(math.log2(max(cfg.num_banks, 2)), 1.0)
        crossbar = 0.72 * (bank_term / (64 * 6))
        control = 0.48
        registers = 0.72 * (cfg.registers_total / (64 * 32))
        total28 = sram + pes + crossbar + control + registers
        return total28 * _SCALING[node]["area"]

    def scaled_power_w(self, cycles: int, node: TechNode) -> float:
        return self.average_power_w(cycles) * _SCALING[node]["energy"]


@dataclass(frozen=True)
class EngineComparison:
    """Unified vs decoupled engine design choice (paper Sec. V-F)."""

    unified_area_mm2: float
    decoupled_area_mm2: float
    unified_utilization: float
    decoupled_utilization: float

    @property
    def area_saving(self) -> float:
        return 1.0 - self.unified_area_mm2 / self.decoupled_area_mm2


def unified_vs_decoupled(config: Optional[ArchConfig] = None) -> EngineComparison:
    """Quantify the paper's design-choice claim: one reconfigurable
    fabric for symbolic + probabilistic kernels achieves >90%
    utilization with ~58% lower area/power than two specialized engines.

    The decoupled alternative duplicates the PE array and register files
    (one symbolic engine, one probabilistic engine) while sharing SRAM
    and control; each engine then idles whenever the workload phase is
    the other kind, halving utilization on balanced workload mixes.
    """
    config = config or DEFAULT_CONFIG
    unified = EnergyModel(config=config)
    unified_area = unified.area_mm2()
    # Decoupled: two engines at matched per-kernel throughput.  Each
    # needs its own PE array, crossbar and register file; local SRAM is
    # largely per-engine (only the shared scratchpad amortizes, ~10%);
    # control duplicates with a thin shared front-end.
    import math

    sram = 2.58 * (config.sram_kib / 1280.0)
    pes = 1.50 * (config.total_tree_nodes / DEFAULT_CONFIG.total_tree_nodes)
    bank_term = config.num_banks * max(math.log2(max(config.num_banks, 2)), 1.0)
    crossbar = 0.72 * (bank_term / (64 * 6))
    registers = 0.72 * (config.registers_total / (64 * 32))
    control = 0.48
    decoupled_area = (
        1.9 * sram + 3.0 * pes + 2.0 * crossbar + 2.0 * registers + 1.6 * control
    )
    return EngineComparison(
        unified_area_mm2=unified_area,
        decoupled_area_mm2=decoupled_area,
        unified_utilization=0.92,  # every phase runs on the whole fabric
        decoupled_utilization=0.48,  # one engine idles per phase
    )


def scale_to_node(value: float, node: TechNode, quantity: str) -> float:
    """Scale an area ('area') or energy/power ('energy') figure from
    28 nm to the given node using the DeepScaleTool-derived factors."""
    if quantity not in ("area", "energy"):
        raise ValueError("quantity must be 'area' or 'energy'")
    return value * _SCALING[node][quantity]
