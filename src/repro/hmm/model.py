"""HMM parameters: initial, transition and emission distributions."""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class HMM:
    """A discrete-observation hidden Markov model.

    Attributes
    ----------
    initial:
        Shape (S,): P(z_1 = s).
    transition:
        Shape (S, S): ``transition[i, j]`` = P(z_t = j | z_{t-1} = i).
    emission:
        Shape (S, V): ``emission[s, o]`` = P(x_t = o | z_t = s).
    """

    initial: np.ndarray
    transition: np.ndarray
    emission: np.ndarray

    def __post_init__(self) -> None:
        self.initial = np.asarray(self.initial, dtype=float)
        self.transition = np.asarray(self.transition, dtype=float)
        self.emission = np.asarray(self.emission, dtype=float)
        s = self.num_states
        if self.transition.shape != (s, s):
            raise ValueError("transition must be (S, S)")
        if self.emission.shape[0] != s:
            raise ValueError("emission must have S rows")
        for name, row_stochastic in (
            ("initial", self.initial[None, :]),
            ("transition", self.transition),
            ("emission", self.emission),
        ):
            if np.any(row_stochastic < -1e-12):
                raise ValueError(f"{name} has negative entries")

    @property
    def num_states(self) -> int:
        return len(self.initial)

    @property
    def num_observations(self) -> int:
        return self.emission.shape[1]

    def validate_stochastic(self, atol: float = 1e-8) -> None:
        """Raise unless all distributions are normalized."""
        if not np.isclose(self.initial.sum(), 1.0, atol=atol):
            raise ValueError("initial distribution is not normalized")
        if not np.allclose(self.transition.sum(axis=1), 1.0, atol=atol):
            raise ValueError("transition rows are not normalized")
        if not np.allclose(self.emission.sum(axis=1), 1.0, atol=atol):
            raise ValueError("emission rows are not normalized")

    def normalized(self) -> "HMM":
        """Row-normalized copy (zero rows become uniform)."""

        def norm(matrix: np.ndarray) -> np.ndarray:
            matrix = np.asarray(matrix, dtype=float)
            sums = matrix.sum(axis=-1, keepdims=True)
            out = np.where(sums > 0, matrix / np.where(sums > 0, sums, 1.0), 1.0 / matrix.shape[-1])
            return out

        return HMM(norm(self.initial[None, :])[0], norm(self.transition), norm(self.emission))

    def sample(self, length: int, rng: Optional[_random.Random] = None) -> Tuple[List[int], List[int]]:
        """Sample (states, observations) of the given length."""
        rng = rng or _random.Random()

        def draw(probabilities: np.ndarray) -> int:
            r = rng.random()
            cumulative = 0.0
            for idx, p in enumerate(probabilities):
                cumulative += p
                if r <= cumulative:
                    return idx
            return len(probabilities) - 1

        states: List[int] = []
        observations: List[int] = []
        for t in range(length):
            if t == 0:
                state = draw(self.initial)
            else:
                state = draw(self.transition[states[-1]])
            states.append(state)
            observations.append(draw(self.emission[state]))
        return states, observations

    @staticmethod
    def random(
        num_states: int,
        num_observations: int,
        seed: Optional[int] = None,
        concentration: float = 1.0,
    ) -> "HMM":
        """A random HMM with Dirichlet(concentration) rows."""
        rng = np.random.default_rng(seed)
        initial = rng.dirichlet([concentration] * num_states)
        transition = rng.dirichlet([concentration] * num_states, size=num_states)
        emission = rng.dirichlet([concentration] * num_observations, size=num_states)
        return HMM(initial, transition, emission)

    @property
    def num_parameters(self) -> int:
        return self.initial.size + self.transition.size + self.emission.size
