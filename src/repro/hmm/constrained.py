"""Constrained HMM decoding: HMM × DFA products.

This is the computational heart of the paper's GeLaTo and Ctrl-G
workloads: an autoregressive sequence model (here the HMM standing in
for an LM's tractable surrogate) is intersected with a deterministic
finite automaton expressing a hard lexical constraint, and generation
follows the product model so every emitted sequence satisfies the
constraint by construction.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.hmm.model import HMM


@dataclass
class DFAConstraint:
    """A DFA over the HMM's observation alphabet.

    ``transitions[(state, symbol)]`` gives the successor state; missing
    entries are dead (reject).  ``accepting`` is the set of accepting
    states.
    """

    num_states: int
    transitions: Dict[Tuple[int, int], int]
    accepting: FrozenSet[int]
    start: int = 0

    def step(self, state: Optional[int], symbol: int) -> Optional[int]:
        if state is None:
            return None
        return self.transitions.get((state, symbol))

    def accepts(self, sequence: Sequence[int]) -> bool:
        state: Optional[int] = self.start
        for symbol in sequence:
            state = self.step(state, symbol)
            if state is None:
                return False
        return state in self.accepting

    @staticmethod
    def contains_word(word: Sequence[int], alphabet_size: int) -> "DFAConstraint":
        """DFA accepting sequences containing ``word`` as a substring
        (KMP automaton) — the "must mention keyword" constraint of
        CommonGen-style tasks."""
        n = len(word)
        if n == 0:
            raise ValueError("word must be non-empty")
        failure = [0] * n
        k = 0
        for i in range(1, n):
            while k > 0 and word[i] != word[k]:
                k = failure[k - 1]
            if word[i] == word[k]:
                k += 1
            failure[i] = k
        transitions: Dict[Tuple[int, int], int] = {}
        for state in range(n + 1):
            for symbol in range(alphabet_size):
                if state == n:
                    transitions[(state, symbol)] = n  # absorbing accept
                    continue
                k = state
                while k > 0 and symbol != word[k]:
                    k = failure[k - 1]
                if symbol == word[k]:
                    k += 1
                transitions[(state, symbol)] = k
        return DFAConstraint(n + 1, transitions, frozenset([n]))

    @staticmethod
    def forbids_symbol(symbol: int, alphabet_size: int) -> "DFAConstraint":
        """DFA accepting sequences that never emit ``symbol``."""
        transitions = {
            (0, s): 0 for s in range(alphabet_size) if s != symbol
        }
        return DFAConstraint(1, transitions, frozenset([0]))


@dataclass
class ConstrainedDecodeResult:
    sequence: List[int]
    log_probability: float
    satisfied: bool
    product_states: int = 0


def product_forward_table(
    hmm: HMM, dfa: DFAConstraint, length: int
) -> np.ndarray:
    """Backward "suffix mass" table over the HMM × DFA product.

    ``table[t, s, q]`` = total probability, starting at time t in HMM
    state s and DFA state q, of emitting a length-(length - t) suffix
    that leaves the DFA in an accepting state.  Computed right-to-left;
    this is exactly the dynamic program GeLaTo/Ctrl-G run to steer
    generation.
    """
    S = hmm.num_states
    Q = dfa.num_states
    table = np.zeros((length + 1, S, Q))
    for q in dfa.accepting:
        table[length, :, q] = 1.0
    for t in range(length - 1, -1, -1):
        for q in range(Q):
            acc = np.zeros(S)
            for symbol in range(hmm.num_observations):
                q_next = dfa.transitions.get((q, symbol))
                if q_next is None:
                    continue
                # P(emit symbol | state) * E_{next state}[suffix mass]
                acc += hmm.emission[:, symbol] * (
                    hmm.transition @ table[t + 1, :, q_next]
                    if t + 1 < length
                    else table[t + 1, :, q_next]
                )
            table[t, :, q] = acc
    return table


def constrained_decode(
    hmm: HMM,
    dfa: DFAConstraint,
    length: int,
    rng: Optional[_random.Random] = None,
    greedy: bool = False,
) -> ConstrainedDecodeResult:
    """Sample (or greedily decode) a length-``length`` sequence from the
    HMM conditioned on DFA acceptance.

    Exact: uses the product-space suffix table so the sampled sequence
    is drawn from P(x_1:T | DFA accepts x_1:T).  Returns a result with
    ``satisfied=False`` when the constraint has zero probability mass.
    """
    rng = rng or _random.Random()
    table = product_forward_table(hmm, dfa, length)

    total_mass = float(hmm.initial @ table[0, :, dfa.start])
    if total_mass <= 0:
        return ConstrainedDecodeResult([], float("-inf"), False, dfa.num_states * hmm.num_states)

    sequence: List[int] = []
    log_prob = 0.0
    state_dist = hmm.initial.copy()  # P(z_t | choices so far), unnormalized
    q = dfa.start
    for t in range(length):
        scores = np.zeros(hmm.num_observations)
        for symbol in range(hmm.num_observations):
            q_next = dfa.transitions.get((q, symbol))
            if q_next is None:
                continue
            weighted = state_dist * hmm.emission[:, symbol]
            if t + 1 < length:
                scores[symbol] = float((weighted @ hmm.transition) @ table[t + 1, :, q_next])
            else:
                scores[symbol] = float(weighted @ table[t + 1, :, q_next])
        total = scores.sum()
        if total <= 0:
            return ConstrainedDecodeResult(sequence, float("-inf"), False, dfa.num_states * hmm.num_states)
        probabilities = scores / total
        if greedy:
            symbol = int(np.argmax(probabilities))
        else:
            symbol = int(rng.choices(range(hmm.num_observations), weights=probabilities)[0])
        log_prob += float(np.log(probabilities[symbol]))
        # Advance the (unnormalized) HMM state belief and the DFA.
        state_dist = state_dist * hmm.emission[:, symbol]
        norm = state_dist.sum()
        if norm > 0:
            state_dist = state_dist / norm
        if t + 1 < length:
            state_dist = state_dist @ hmm.transition
        q = dfa.transitions[(q, symbol)]
        sequence.append(symbol)

    return ConstrainedDecodeResult(
        sequence, log_prob, dfa.accepts(sequence), dfa.num_states * hmm.num_states
    )
