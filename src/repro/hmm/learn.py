"""Baum-Welch (EM) parameter estimation for HMMs."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.hmm.inference import log_likelihood, posteriors, transition_posteriors
from repro.hmm.model import HMM


def baum_welch(
    hmm: HMM,
    sequences: Sequence[Sequence[int]],
    iterations: int = 20,
    smoothing: float = 1e-3,
    tolerance: float = 1e-6,
) -> Tuple[HMM, List[float]]:
    """Fit HMM parameters by EM over multiple observation sequences.

    Returns the fitted model and the per-iteration mean log-likelihood
    trajectory (non-decreasing up to numerical noise).
    """
    if not sequences:
        raise ValueError("baum_welch needs at least one sequence")
    model = hmm.normalized()
    history: List[float] = []
    S, V = model.num_states, model.num_observations

    for _ in range(iterations):
        initial_acc = np.full(S, smoothing)
        transition_acc = np.full((S, S), smoothing)
        emission_acc = np.full((S, V), smoothing)

        for observations in sequences:
            if not len(observations):
                continue
            gamma = posteriors(model, observations)
            xi = transition_posteriors(model, observations)
            initial_acc += gamma[0]
            transition_acc += xi.sum(axis=0)
            for t, obs in enumerate(observations):
                emission_acc[:, obs] += gamma[t]

        model = HMM(
            initial_acc / initial_acc.sum(),
            transition_acc / transition_acc.sum(axis=1, keepdims=True),
            emission_acc / emission_acc.sum(axis=1, keepdims=True),
        )
        mean_ll = float(
            np.mean([log_likelihood(model, obs) for obs in sequences if len(obs)])
        )
        history.append(mean_ll)
        if len(history) >= 2 and abs(history[-1] - history[-2]) < tolerance:
            break
    return model, history
