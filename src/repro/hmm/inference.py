"""HMM inference: filtering, smoothing, decoding.

Scaled forward-backward (per-step normalization) keeps long sequences
numerically stable; the scaling factors recover the exact
log-likelihood.  These are the "sequential message passing" DAG
traversals of the paper's Fig. 5.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.hmm.model import HMM


def forward(hmm: HMM, observations: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Scaled forward pass.

    Returns ``(alpha, scales)`` with ``alpha[t, s]`` = P(z_t = s | x_1:t)
    and ``scales[t]`` = P(x_t | x_1:t-1).
    """
    T = len(observations)
    S = hmm.num_states
    alpha = np.zeros((T, S))
    scales = np.zeros(T)
    for t, obs in enumerate(observations):
        if t == 0:
            unnormalized = hmm.initial * hmm.emission[:, obs]
        else:
            unnormalized = (alpha[t - 1] @ hmm.transition) * hmm.emission[:, obs]
        scale = unnormalized.sum()
        scales[t] = scale
        alpha[t] = unnormalized / scale if scale > 0 else 0.0
    return alpha, scales


def backward(hmm: HMM, observations: Sequence[int], scales: np.ndarray) -> np.ndarray:
    """Scaled backward pass matching :func:`forward`'s scaling."""
    T = len(observations)
    S = hmm.num_states
    beta = np.zeros((T, S))
    beta[T - 1] = 1.0
    for t in range(T - 2, -1, -1):
        obs = observations[t + 1]
        scale = scales[t + 1]
        raw = hmm.transition @ (hmm.emission[:, obs] * beta[t + 1])
        beta[t] = raw / scale if scale > 0 else 0.0
    return beta


def log_likelihood(hmm: HMM, observations: Sequence[int]) -> float:
    """log P(x_1:T); -inf for impossible sequences."""
    if not len(observations):
        return 0.0
    _, scales = forward(hmm, observations)
    if np.any(scales <= 0):
        return float("-inf")
    return float(np.log(scales).sum())


def posteriors(hmm: HMM, observations: Sequence[int]) -> np.ndarray:
    """Smoothed state posteriors gamma[t, s] = P(z_t = s | x_1:T)."""
    alpha, scales = forward(hmm, observations)
    beta = backward(hmm, observations, scales)
    gamma = alpha * beta
    sums = gamma.sum(axis=1, keepdims=True)
    return np.where(sums > 0, gamma / np.where(sums > 0, sums, 1.0), 0.0)


def transition_posteriors(hmm: HMM, observations: Sequence[int]) -> np.ndarray:
    """xi[t, i, j] = P(z_t = i, z_{t+1} = j | x_1:T) for t < T-1.

    These expected transition usages drive the paper's HMM pruning: a
    transition whose total posterior mass is negligible contributes
    negligibly to the joint likelihood.
    """
    T = len(observations)
    S = hmm.num_states
    if T < 2:
        return np.zeros((0, S, S))
    alpha, scales = forward(hmm, observations)
    beta = backward(hmm, observations, scales)
    xi = np.zeros((T - 1, S, S))
    for t in range(T - 1):
        obs = observations[t + 1]
        raw = (
            alpha[t][:, None]
            * hmm.transition
            * (hmm.emission[:, obs] * beta[t + 1])[None, :]
        )
        total = raw.sum()
        xi[t] = raw / total if total > 0 else 0.0
    return xi


def filter_distribution(hmm: HMM, observations: Sequence[int]) -> np.ndarray:
    """Filtering: P(z_T | x_1:T)."""
    alpha, _ = forward(hmm, observations)
    return alpha[-1]


def viterbi(hmm: HMM, observations: Sequence[int]) -> Tuple[List[int], float]:
    """Most likely state path and its log probability."""
    T = len(observations)
    S = hmm.num_states
    with np.errstate(divide="ignore"):
        log_init = np.log(hmm.initial)
        log_trans = np.log(hmm.transition)
        log_emit = np.log(hmm.emission)
    delta = np.zeros((T, S))
    backpointer = np.zeros((T, S), dtype=int)
    delta[0] = log_init + log_emit[:, observations[0]]
    for t in range(1, T):
        candidates = delta[t - 1][:, None] + log_trans
        backpointer[t] = np.argmax(candidates, axis=0)
        delta[t] = candidates[backpointer[t], np.arange(S)] + log_emit[:, observations[t]]
    path = [int(np.argmax(delta[T - 1]))]
    for t in range(T - 1, 0, -1):
        path.append(int(backpointer[t, path[-1]]))
    path.reverse()
    return path, float(delta[T - 1].max())


def predict_next_observation(hmm: HMM, observations: Sequence[int]) -> np.ndarray:
    """P(x_{T+1} | x_1:T): one-step predictive distribution."""
    if len(observations):
        state = filter_distribution(hmm, observations) @ hmm.transition
    else:
        state = hmm.initial
    return state @ hmm.emission
