"""Hidden Markov model substrate (paper Sec. II-C, Eq. 2).

Discrete-observation HMMs with forward/backward filtering and smoothing,
Viterbi decoding, Baum-Welch learning, posterior-usage statistics (the
quantities REASON's flow pruning ranks transitions/emissions by), and
unrolling into the unified DAG representation.
"""

from repro.hmm.model import HMM
from repro.hmm.inference import (
    forward,
    backward,
    log_likelihood,
    posteriors,
    transition_posteriors,
    viterbi,
    filter_distribution,
)
from repro.hmm.learn import baum_welch
from repro.hmm.constrained import constrained_decode, DFAConstraint

__all__ = [
    "HMM",
    "forward",
    "backward",
    "log_likelihood",
    "posteriors",
    "transition_posteriors",
    "viterbi",
    "filter_distribution",
    "baum_welch",
    "constrained_decode",
    "DFAConstraint",
]
