"""Analytical cost model of the neural (LLM/DNN) stage.

The paper's workloads call closed LLMs (LLaMA, GPT); end-to-end latency
splits only need the neural stage's compute/memory profile, so this
model computes transformer FLOP and byte counts per prefill/decode step
from the standard 2·params approximation plus attention terms, and emits
:class:`~repro.baselines.device.KernelProfile` lists the device models
can time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.device import KernelClass, KernelProfile


@dataclass(frozen=True)
class TransformerCostModel:
    """Decoder-only transformer with standard dimension relations."""

    name: str
    num_parameters: float  # e.g. 7e9
    num_layers: int
    hidden_dim: int
    bytes_per_weight: float = 2.0  # fp16

    @property
    def kv_bytes_per_token(self) -> float:
        return 2 * self.num_layers * self.hidden_dim * self.bytes_per_weight

    def prefill_profiles(self, prompt_tokens: int) -> List[KernelProfile]:
        """Kernels for one prompt prefill (compute-bound GEMMs)."""
        gemm_flops = 2.0 * self.num_parameters * prompt_tokens
        attention_flops = (
            2.0 * self.num_layers * prompt_tokens * prompt_tokens * self.hidden_dim
        )
        weight_bytes = self.num_parameters * self.bytes_per_weight
        activation_bytes = prompt_tokens * self.hidden_dim * self.bytes_per_weight * self.num_layers
        return [
            KernelProfile(
                KernelClass.NEURAL_GEMM,
                gemm_flops + attention_flops,
                weight_bytes + activation_bytes,
                launches=self.num_layers * 4,
            ),
            KernelProfile(
                KernelClass.NEURAL_SOFTMAX,
                5.0 * self.num_layers * prompt_tokens * prompt_tokens,
                2.0 * self.num_layers * prompt_tokens * prompt_tokens,
                launches=self.num_layers,
            ),
        ]

    def decode_profiles(self, new_tokens: int, context_tokens: int) -> List[KernelProfile]:
        """Kernels for autoregressive decoding (memory-bound: weights
        stream per token)."""
        gemm_flops = 2.0 * self.num_parameters * new_tokens
        weight_bytes = self.num_parameters * self.bytes_per_weight * new_tokens
        kv_bytes = self.kv_bytes_per_token * context_tokens * new_tokens
        return [
            KernelProfile(
                KernelClass.NEURAL_GEMM,
                gemm_flops,
                weight_bytes + kv_bytes,
                launches=self.num_layers * 4 * max(new_tokens // 8, 1),
            ),
            KernelProfile(
                KernelClass.NEURAL_SOFTMAX,
                5.0 * self.num_layers * context_tokens * new_tokens,
                2.0 * self.num_layers * context_tokens * new_tokens,
                launches=max(new_tokens // 8, 1),
            ),
        ]

    def generation_profiles(
        self, prompt_tokens: int, new_tokens: int
    ) -> List[KernelProfile]:
        return self.prefill_profiles(prompt_tokens) + self.decode_profiles(
            new_tokens, prompt_tokens + new_tokens
        )


def _llama_like(name: str, params: float, layers: int, hidden: int) -> TransformerCostModel:
    return TransformerCostModel(name, params, layers, hidden)


#: The model sizes of the paper's scaling study (Fig. 2).
MODEL_ZOO: Dict[str, TransformerCostModel] = {
    "125M": _llama_like("125M", 1.25e8, 12, 768),
    "1B": _llama_like("1B", 1.1e9, 22, 2048),
    "7B": _llama_like("7B", 6.7e9, 32, 4096),
    "8B": _llama_like("8B", 8.0e9, 32, 4096),
    "13B": _llama_like("13B", 1.3e10, 40, 5120),
    "70B": _llama_like("70B", 7.0e10, 80, 8192),
}


@dataclass(frozen=True)
class LLMOptimizations:
    """The orthogonal neural-side optimizations of Sec. VII-C.

    Speedup factors are multiplicative on neural kernel time, matching
    the paper's reported 2.8-3.3× (unique prompts) and 4-5× (reused
    prefixes).
    """

    memory_efficient_attention: bool = False
    chunked_prefill: bool = False
    speculative_decoding: bool = False
    flash_attention3: bool = False
    fp8_kv_cache: bool = False
    prefix_caching: bool = False

    def speedup(self, prefix_reuse: bool = False) -> float:
        factor = 1.0
        if self.memory_efficient_attention:
            factor *= 1.25
        if self.chunked_prefill:
            factor *= 1.15
        if self.speculative_decoding:
            factor *= 1.6
        if self.flash_attention3:
            factor *= 1.3
        if self.fp8_kv_cache:
            factor *= 1.1
        if self.prefix_caching and prefix_reuse:
            factor *= 1.45
        return factor

    @staticmethod
    def all_enabled() -> "LLMOptimizations":
        return LLMOptimizations(True, True, True, True, True, True)
