"""LINC-style workload: logical reasoning by combining language models
with first-order logic provers (paper Table I, tasks FOLIO and
ProofWriter; metric accuracy).

The neural stage parses natural language into FOL (here: the generator
hands us the formalization directly, with occasional *parse errors*
modeling the LLM's semantic-parsing failure mode); the symbolic stage
decides entailment by resolution with a budget.  Accuracy reflects both
parse quality and prover completeness — LINC's actual failure modes.
"""

from __future__ import annotations

import random
from typing import List

from repro.baselines.device import KernelClass, KernelProfile
from repro.logic.cnf import CNF
from repro.logic.fol.clausify import clausify_all, ground_to_cnf
from repro.logic.fol.resolution import ResolutionProver
from repro.logic.fol.terms import Not
from repro.workloads.base import NeuroSymbolicWorkload, TaskInstance, WorkloadResult
from repro.workloads.datasets import EntailmentProblem, generate_entailment_problem


class LINCWorkload(NeuroSymbolicWorkload):
    name = "LINC"
    tasks = ("FOLIO", "ProofWriter")
    metric = "Accuracy"
    model_name = "8B"
    symbolic_runtime_share = 0.348  # paper Fig. 3(a)

    def __init__(self, parse_error_rate: float = 0.06, prover_budget: int = 3000):
        self.parse_error_rate = parse_error_rate
        self.prover_budget = prover_budget

    def generate_instance(self, task: str, scale: str = "small", seed: int = 0) -> TaskInstance:
        if task not in self.tasks:
            raise ValueError(f"unknown task {task!r}")
        rng = random.Random(hash((task, seed)) & 0xFFFFFFFF)
        depth = (5 if scale == "large" else 3) + (1 if task == "FOLIO" else 0)
        entailed = rng.random() < 0.5
        problem = generate_entailment_problem(
            depth=depth,
            num_distractors=4 if scale == "large" else 2,
            entailed=entailed,
            seed=seed,
        )
        return TaskInstance(task, scale, problem, ground_truth=entailed, seed=seed)

    def parse(self, problem: EntailmentProblem, seed: int) -> EntailmentProblem:
        """The neural stage: formalization with a small error rate.

        A parse error drops one theory formula — the dominant LINC
        failure mode (missing premise → wrong non-entailment verdict).
        """
        rng = random.Random(seed ^ 0x5EED)
        if rng.random() < self.parse_error_rate and len(problem.theory) > 1:
            keep = list(problem.theory)
            keep.pop(rng.randrange(len(keep)))
            return EntailmentProblem(keep, problem.goal, problem.entailed)
        return problem

    def solve(self, instance: TaskInstance) -> WorkloadResult:
        problem = self.parse(instance.payload, instance.seed)
        prover = ResolutionProver(max_clauses=self.prover_budget)
        verdict = prover.prove(problem.theory, problem.goal)
        answer = bool(verdict) if verdict is not None else False
        ops = prover.stats.resolutions + prover.stats.clauses_generated
        return WorkloadResult(
            answer=answer,
            correct=answer == instance.payload.entailed,
            symbolic_ops=max(ops, 1),
            metadata={
                "clauses_generated": prover.stats.clauses_generated,
                "budget_exhausted": float(verdict is None),
            },
        )

    def reason_kernel(self, instance: TaskInstance) -> CNF:
        """Herbrand-grounded clause set of theory ∪ ¬goal as CNF.

        The problems use a single-constant domain, so grounding every
        universally quantified formula over the constants yields a
        propositional SAT instance equivalent to the entailment check —
        the binary implication chains of the theory are exactly what
        REASON's implication-graph pruning exploits.
        """
        from repro.logic.fol.clausify import _substitute_formula
        from repro.logic.fol.terms import Const, ForAll

        problem: EntailmentProblem = instance.payload
        constants = [Const("c")]
        grounded = []
        for formula in list(problem.theory) + [Not(problem.goal)]:
            if isinstance(formula, ForAll):
                for constant in constants:
                    grounded.append(
                        _substitute_formula(formula.body, {formula.variable: constant})
                    )
            else:
                grounded.append(formula)
        clauses = clausify_all(grounded)
        ground = [c for c in clauses if c.is_ground()]
        formula, _ = ground_to_cnf(ground)
        return formula

    def symbolic_profiles(self, instance: TaskInstance) -> List[KernelProfile]:
        result = self.solve(instance)
        ops = result.symbolic_ops
        return [
            KernelProfile(KernelClass.LOGIC, flops=ops * 6.0, bytes_accessed=ops * 80.0)
        ]
