"""NeuroPC-style workload: compositional, interpretable classification
via probabilistic circuits (paper Table I, task AwA2; metric accuracy).

The neural stage predicts attribute probabilities; a class-conditional
probabilistic circuit per class scores the attribute vector; the
predicted class maximizes circuit likelihood.  Interpretability comes
for free: the per-class circuits expose which attributes drove the
decision.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.baselines.device import KernelClass, KernelProfile
from repro.pc.circuit import Circuit, ProductNode, bernoulli_leaf
from repro.pc.inference import expected_flops, likelihood
from repro.workloads.base import NeuroSymbolicWorkload, TaskInstance, WorkloadResult
from repro.workloads.datasets import AttributeDataset, generate_attribute_dataset


class NeuroPCWorkload(NeuroSymbolicWorkload):
    name = "NeuroPC"
    tasks = ("AwA2",)
    metric = "Accuracy"
    model_name = "125M"  # a DNN, not an LLM (Table I)
    symbolic_runtime_share = 0.505  # paper Fig. 3(a)

    def __init__(self, num_classes: int = 6, num_attributes: int = 10, leaf_confidence: float = 0.85):
        self.num_classes = num_classes
        self.num_attributes = num_attributes
        self.leaf_confidence = leaf_confidence

    def class_circuit(self, signature: Sequence[int]) -> Circuit:
        """Class-conditional PC: a mixture of attribute-product variants.

        Each mixture component jitters the leaf confidence, modeling
        intra-class appearance variation; the mixture structure is what
        flow pruning (Table IV) operates on."""
        from repro.pc.circuit import SumNode

        factors = []
        for i, bit in enumerate(signature):
            confident = self.leaf_confidence if bit else 1.0 - self.leaf_confidence
            relaxed = 0.5 + (confident - 0.5) * 0.4
            factors.append(
                SumNode(
                    [bernoulli_leaf(i, confident), bernoulli_leaf(i, relaxed), bernoulli_leaf(i, 0.5)],
                    [0.75, 0.2, 0.05],
                )
            )
        return Circuit(ProductNode(factors))

    def generate_instance(self, task: str, scale: str = "small", seed: int = 0) -> TaskInstance:
        if task not in self.tasks:
            raise ValueError(f"unknown task {task!r}")
        count = 60 if scale == "large" else 24
        noise = 0.18 if scale == "large" else 0.15
        dataset = generate_attribute_dataset(
            self.num_classes, self.num_attributes, count, noise, seed=seed
        )
        return TaskInstance(task, scale, dataset, seed=seed)

    def classify(self, dataset: AttributeDataset, scores: Sequence[float]) -> int:
        """Pick the class whose circuit maximizes the soft-evidence
        likelihood Π_i (p_i·P(a_i=1) + (1-p_i)·P(a_i=0))."""
        best_class, best_value = 0, -1.0
        for cls, signature in enumerate(dataset.class_signatures):
            circuit = self.class_circuit(signature)
            value = 1.0
            for i, p in enumerate(scores):
                on = likelihood(circuit, {i: 1})  # P(a_i = 1), others marginalized
                value *= p * on + (1.0 - p) * (1.0 - on)
            if value > best_value:
                best_class, best_value = cls, value
        return best_class

    def solve(self, instance: TaskInstance) -> WorkloadResult:
        dataset: AttributeDataset = instance.payload
        correct = 0
        for scores, label in dataset.examples:
            if self.classify(dataset, scores) == label:
                correct += 1
        accuracy = correct / len(dataset.examples)
        circuit = self.class_circuit(dataset.class_signatures[0])
        ops = expected_flops(circuit) * len(dataset.examples) * self.num_classes
        return WorkloadResult(
            answer=accuracy,
            correct=accuracy > 0.7,
            symbolic_ops=max(ops, self.num_attributes * len(dataset.examples) * self.num_classes),
            metadata={"accuracy": accuracy},
        )

    def reason_kernel(self, instance: TaskInstance) -> Circuit:
        dataset: AttributeDataset = instance.payload
        return self.class_circuit(dataset.class_signatures[0])

    def symbolic_profiles(self, instance: TaskInstance) -> List[KernelProfile]:
        dataset: AttributeDataset = instance.payload
        queries = len(dataset.examples) * self.num_classes
        per_query = 2.0 * self.num_attributes
        return [
            KernelProfile(
                KernelClass.MARGINAL,
                flops=per_query * queries,
                bytes_accessed=16.0 * self.num_attributes * queries,
            )
        ]

    def neural_tokens(self, instance: TaskInstance) -> Tuple[int, int]:
        # DNN feature extraction: modeled as a short prefill, no decode.
        return 64, 1
