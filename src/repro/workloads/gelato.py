"""GeLaTo-style workload: tractable control of autoregressive generation
(paper Table I, tasks CommonGen and News; metric BLEU).

An HMM distilled from a synthetic corpus stands in for the tractable
surrogate of the language model; hard lexical constraints (keyword
inclusion) compile to DFAs; generation samples exactly from the
HMM × DFA product, so every output satisfies the constraint by
construction.  We report constraint-satisfaction rate and a BLEU-2
proxy against reference corpora — absolute BLEU differs from the paper
(synthetic vocabulary), but the pruning experiment's *delta* is what
Table IV checks.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.baselines.device import KernelClass, KernelProfile
from repro.hmm.constrained import DFAConstraint, constrained_decode
from repro.hmm.learn import baum_welch
from repro.hmm.model import HMM
from repro.workloads.base import NeuroSymbolicWorkload, TaskInstance, WorkloadResult
from repro.workloads.datasets import TextCorpus, generate_text_corpus


def bleu2(candidate: Sequence[int], references: Sequence[Sequence[int]]) -> float:
    """BLEU-2: geometric mean of 1/2-gram modified precision with
    brevity penalty, against multiple references."""
    if not candidate:
        return 0.0
    precisions: List[float] = []
    for n in (1, 2):
        grams = Counter(tuple(candidate[i : i + n]) for i in range(len(candidate) - n + 1))
        if not grams:
            precisions.append(0.0)
            continue
        max_ref: Counter = Counter()
        for ref in references:
            ref_grams = Counter(tuple(ref[i : i + n]) for i in range(len(ref) - n + 1))
            for gram, count in ref_grams.items():
                max_ref[gram] = max(max_ref[gram], count)
        clipped = sum(min(count, max_ref.get(gram, 0)) for gram, count in grams.items())
        precisions.append(clipped / sum(grams.values()))
    if min(precisions) == 0:
        return 0.0
    closest = min(references, key=lambda r: abs(len(r) - len(candidate)))
    brevity = math.exp(min(0.0, 1.0 - len(closest) / len(candidate)))
    return 100.0 * brevity * math.exp(0.5 * (math.log(precisions[0]) + math.log(precisions[1])))


class GeLaToWorkload(NeuroSymbolicWorkload):
    name = "GeLaTo"
    tasks = ("CommonGen", "News")
    metric = "BLEU"
    model_name = "7B"
    symbolic_runtime_share = 0.366  # paper Fig. 3(a)

    def __init__(self, num_states: int = 6, vocab_size: int = 12, bw_iterations: int = 4):
        self.num_states = num_states
        self.vocab_size = vocab_size
        self.bw_iterations = bw_iterations
        self._hmm_cache: Dict[Tuple[str, int], Tuple[HMM, TextCorpus]] = {}

    def _distilled_hmm(self, task: str, seed: int) -> Tuple[HMM, TextCorpus]:
        key = (task, seed)
        if key not in self._hmm_cache:
            corpus = generate_text_corpus(
                self.vocab_size, self.num_states, num_sequences=40, length=14,
                seed=hash((task, seed)) & 0xFFFF,
            )
            student = HMM.random(self.num_states, self.vocab_size, seed=seed)
            fitted, _ = baum_welch(student, corpus.sequences, iterations=self.bw_iterations)
            self._hmm_cache[key] = (fitted, corpus)
        return self._hmm_cache[key]

    def generate_instance(self, task: str, scale: str = "small", seed: int = 0) -> TaskInstance:
        if task not in self.tasks:
            raise ValueError(f"unknown task {task!r}")
        rng = random.Random(seed)
        keyword_length = 2 if task == "CommonGen" else 3
        keyword = [rng.randrange(self.vocab_size) for _ in range(keyword_length)]
        length = 20 if scale == "large" else 12
        return TaskInstance(task, scale, (keyword, length), ground_truth=keyword, seed=seed)

    def solve(self, instance: TaskInstance) -> WorkloadResult:
        keyword, length = instance.payload
        hmm, corpus = self._distilled_hmm(instance.task, instance.seed % 3)
        dfa = DFAConstraint.contains_word(keyword, self.vocab_size)
        result = constrained_decode(hmm, dfa, length, rng=random.Random(instance.seed))
        score = bleu2(result.sequence, corpus.sequences) if result.satisfied else 0.0
        ops = length * self.num_states * self.num_states * dfa.num_states
        return WorkloadResult(
            answer=result.sequence,
            correct=result.satisfied,
            symbolic_ops=ops,
            metadata={"bleu2": score, "log_prob": result.log_probability},
        )

    def reason_kernel(self, instance: TaskInstance) -> HMM:
        hmm, _ = self._distilled_hmm(instance.task, instance.seed % 3)
        return hmm

    def calibration_sequences(self, instance: TaskInstance) -> List[List[int]]:
        _, corpus = self._distilled_hmm(instance.task, instance.seed % 3)
        return corpus.sequences[:10]

    def symbolic_profiles(self, instance: TaskInstance) -> List[KernelProfile]:
        keyword, length = instance.payload
        dfa_states = len(keyword) + 1
        s = self.num_states
        table_ops = length * s * s * dfa_states * self.vocab_size
        return [
            KernelProfile(
                KernelClass.BAYESIAN,
                flops=2.0 * table_ops,
                bytes_accessed=8.0 * table_ops,
            )
        ]
