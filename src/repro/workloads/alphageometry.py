"""AlphaGeometry-style workload: theorem proving by LLM proposal +
symbolic deduction (paper Table I, tasks IMO and MiniF2F).

The pipeline alternates a neural proposal stage (which auxiliary
construction to add) with a symbolic deduction stage (forward chaining
over a geometric rule database, with a SAT certificate of the final
derivation).  Our neural stand-in ranks candidate constructions by a
noisy relevance heuristic — accuracy therefore reflects how often the
correct construction lands in the proposal beam plus whether deduction
closes, the same failure modes as the original system.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.baselines.device import KernelClass, KernelProfile
from repro.logic.cnf import CNF
from repro.logic.fol.chase import ForwardChainer
from repro.logic.fol.terms import Predicate
from repro.logic.generators import redundant_sat
from repro.workloads.base import NeuroSymbolicWorkload, TaskInstance, WorkloadResult
from repro.workloads.datasets import DeductionProblem, generate_deduction_problem


class AlphaGeometryWorkload(NeuroSymbolicWorkload):
    name = "AlphaGeometry"
    tasks = ("IMO", "MiniF2F")
    metric = "Accuracy"
    model_name = "8B"
    symbolic_runtime_share = 0.638  # paper Fig. 3(a)

    def __init__(self, beam_width: int = 2, proposal_noise: float = 0.8):
        self.beam_width = beam_width
        self.proposal_noise = proposal_noise

    def generate_instance(self, task: str, scale: str = "small", seed: int = 0) -> TaskInstance:
        if task not in self.tasks:
            raise ValueError(f"unknown task {task!r}")
        rng = random.Random(hash((task, seed)) & 0xFFFFFFFF)
        hard = task == "IMO" or rng.random() < 0.4
        provable = rng.random() < 0.85
        size = dict(num_points=12, chain_length=6) if scale == "large" else dict(num_points=8, chain_length=4)
        problem = generate_deduction_problem(
            hard=hard, provable=provable, seed=seed, **size
        )
        return TaskInstance(task, scale, problem, ground_truth=provable, seed=seed)

    def propose_constructions(self, problem: DeductionProblem, seed: int) -> List[Predicate]:
        """The neural stage: rank candidates by goal relevance + noise."""
        rng = random.Random(seed)

        def score(candidate: Predicate) -> float:
            relevance = 1.0 if candidate.name == problem.goal.name else 0.0
            shared = len(set(candidate.args) & set(problem.goal.args))
            return relevance + 0.3 * shared + rng.gauss(0, self.proposal_noise)

        ranked = sorted(problem.candidate_constructions, key=score, reverse=True)
        return ranked[: self.beam_width]

    def solve(self, instance: TaskInstance) -> WorkloadResult:
        problem: DeductionProblem = instance.payload
        chainer = ForwardChainer(max_iterations=40, max_facts=50_000)
        facts = list(problem.facts)
        if problem.candidate_constructions:
            facts.extend(self.propose_constructions(problem, instance.seed))
        derived = chainer.entails(facts, problem.rules, problem.goal)
        correct = derived == problem.provable
        ops = chainer.stats.unification_attempts + chainer.stats.facts_derived
        return WorkloadResult(
            answer=derived,
            correct=correct,
            symbolic_ops=ops,
            metadata={
                "iterations": chainer.stats.iterations,
                "facts_derived": chainer.stats.facts_derived,
            },
        )

    def reason_kernel(self, instance: TaskInstance) -> CNF:
        """The SAT certificate REASON solves: a planted formula whose
        size tracks the instance's deduction footprint and whose
        derivation-chain clauses carry prunable implied literals."""
        problem: DeductionProblem = instance.payload
        num_vars = 20 + 4 * len(problem.facts)
        formula, _ = redundant_sat(
            num_vars, int(num_vars * 3.5), redundancy=0.25, seed=instance.seed
        )
        return formula

    def symbolic_profiles(self, instance: TaskInstance) -> List[KernelProfile]:
        result = self.solve(instance)
        ops = max(result.symbolic_ops, 1)
        # Deduction: pointer-heavy unification; SAT: BCP clause fetches.
        return [
            KernelProfile(KernelClass.LOGIC, flops=ops * 4.0, bytes_accessed=ops * 64.0),
            KernelProfile(KernelClass.LOGIC, flops=ops * 2.0, bytes_accessed=ops * 48.0),
        ]

    def neural_tokens(self, instance: TaskInstance) -> Tuple[int, int]:
        scale_factor = 2 if instance.scale == "large" else 1
        # Proposal loops: longer generation than classification workloads.
        return 512 * scale_factor, 128 * scale_factor
