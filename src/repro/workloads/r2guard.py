"""R2-Guard-style workload: LLM guardrail via probabilistic circuits
(paper Table I, tasks TwinSafety and XSTest; metric AUPRC).

The neural stage scores unsafety categories; the probabilistic stage is
a PC over category variables and the safety label, learned with EM from
rule-generated data, queried as P(unsafe | categories).  An HMM smooths
verdicts across dialogue turns.  Flow pruning of the PC is the Table IV
experiment for this workload.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.baselines.device import KernelClass, KernelProfile
from repro.hmm.model import HMM
from repro.pc.circuit import Circuit
from repro.pc.inference import conditional, expected_flops
from repro.pc.learn import fit_em, random_circuit
from repro.workloads.base import NeuroSymbolicWorkload, TaskInstance, WorkloadResult
from repro.workloads.datasets import SafetyDataset, generate_safety_dataset


def auprc(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Area under the precision-recall curve (interpolated steps)."""
    pairs = sorted(zip(scores, labels), key=lambda p: -p[0])
    total_positive = sum(labels)
    if total_positive == 0:
        return 0.0
    area = 0.0
    true_positive = 0
    prev_recall = 0.0
    for index, (_, label) in enumerate(pairs, start=1):
        if label == 1:
            true_positive += 1
            recall = true_positive / total_positive
            precision = true_positive / index
            area += precision * (recall - prev_recall)
            prev_recall = recall
    return area


class R2GuardWorkload(NeuroSymbolicWorkload):
    name = "R2-Guard"
    tasks = ("TwinSafety", "XSTest")
    metric = "AUPRC"
    model_name = "7B"
    symbolic_runtime_share = 0.627  # paper Fig. 3(a)

    def __init__(self, num_categories: int = 7, em_iterations: int = 10):
        self.num_categories = num_categories
        self.em_iterations = em_iterations
        self._circuit_cache: Dict[Tuple[str, int], Circuit] = {}

    # The PC's variables: 0..k-1 category bits, k = label.
    @property
    def label_var(self) -> int:
        return self.num_categories

    def _build_circuit(self, task: str, seed: int, dataset: SafetyDataset) -> Circuit:
        key = (task, seed)
        if key not in self._circuit_cache:
            circuit = random_circuit(
                self.num_categories + 1, depth=3, sum_children=3, seed=seed
            )
            evidence = [
                {**{i: bit for i, bit in enumerate(x)}, self.label_var: y}
                for x, y in zip(dataset.features, dataset.labels)
            ]
            fit_em(circuit, evidence, iterations=self.em_iterations)
            self._circuit_cache[key] = circuit
        return self._circuit_cache[key]

    def generate_instance(self, task: str, scale: str = "small", seed: int = 0) -> TaskInstance:
        if task not in self.tasks:
            raise ValueError(f"unknown task {task!r}")
        noise = 0.10 if task == "TwinSafety" else 0.06
        size = 500 if scale == "large" else 240
        train = generate_safety_dataset(self.num_categories, size, noise, seed=hash((task, "train")) & 0xFFFF)
        test = generate_safety_dataset(self.num_categories, 80, noise, seed=seed + 7)
        return TaskInstance(task, scale, (train, test), ground_truth=test.labels, seed=seed)

    def score_examples(self, instance: TaskInstance) -> Tuple[List[float], List[int]]:
        train, test = instance.payload
        circuit = self._build_circuit(instance.task, instance.seed % 3, train)
        scores: List[float] = []
        for x in test.features:
            given = {i: bit for i, bit in enumerate(x)}
            scores.append(conditional(circuit, {self.label_var: 1}, given))
        return scores, list(test.labels)

    def solve(self, instance: TaskInstance) -> WorkloadResult:
        scores, labels = self.score_examples(instance)
        value = auprc(scores, labels)
        train, test = instance.payload
        circuit = self._build_circuit(instance.task, instance.seed % 3, train)
        ops = expected_flops(circuit) * len(test.features)
        # "Correct" for accuracy aggregation: AUPRC above a useful bar.
        return WorkloadResult(
            answer=value,
            correct=value > 0.7,
            symbolic_ops=ops,
            metadata={"auprc": value},
        )

    def reason_kernel(self, instance: TaskInstance) -> Circuit:
        train, _ = instance.payload
        return self._build_circuit(instance.task, instance.seed % 3, train)

    def smoothing_hmm(self, seed: int = 0) -> HMM:
        """Dialogue-turn smoothing: 2 hidden states (safe/unsafe run)."""
        return HMM(
            initial=[0.8, 0.2],
            transition=[[0.9, 0.1], [0.3, 0.7]],
            emission=[[0.85, 0.15], [0.25, 0.75]],
        )

    def symbolic_profiles(self, instance: TaskInstance) -> List[KernelProfile]:
        train, test = instance.payload
        circuit = self._build_circuit(instance.task, instance.seed % 3, train)
        per_query = expected_flops(circuit)
        queries = len(test.features)
        return [
            KernelProfile(
                KernelClass.MARGINAL,
                flops=2.0 * per_query * queries,
                bytes_accessed=12.0 * circuit.num_edges * queries,
            ),
            KernelProfile(
                KernelClass.BAYESIAN,
                flops=2.0 * 4 * len(test.features),
                bytes_accessed=32.0 * len(test.features),
            ),
        ]
