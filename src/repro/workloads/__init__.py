"""The six neuro-symbolic workloads of the paper's evaluation (Table I).

Each workload couples a neural stage (an analytical transformer/DNN cost
model — the substitute for the closed LLMs the paper drives) with a real
symbolic/probabilistic stage executed on this repository's substrates:

* :class:`AlphaGeometryWorkload` — math theorem proving: LLM proposal +
  forward-chaining deduction + SAT certificates (IMO / MiniF2F tasks);
* :class:`R2GuardWorkload` — safety classification: LLM features + PC
  rule circuit + HMM smoothing (TwinSafety / XSTest);
* :class:`GeLaToWorkload` — constrained generation: HMM × DFA product
  decoding (CommonGen / News);
* :class:`CtrlGWorkload` — interactive text infilling under constraints
  (CoAuthor);
* :class:`NeuroPCWorkload` — interpretable attribute classification via
  PCs (AwA2);
* :class:`LINCWorkload` — FOL logical reasoning by resolution
  (FOLIO / ProofWriter).
"""

from repro.workloads.base import (
    NeuroSymbolicWorkload,
    TaskInstance,
    WorkloadResult,
    TASK_TO_WORKLOAD,
)
from repro.workloads.neural import TransformerCostModel, MODEL_ZOO
from repro.workloads.alphageometry import AlphaGeometryWorkload
from repro.workloads.r2guard import R2GuardWorkload
from repro.workloads.gelato import GeLaToWorkload
from repro.workloads.ctrlg import CtrlGWorkload
from repro.workloads.neuropc import NeuroPCWorkload
from repro.workloads.linc import LINCWorkload


def all_workloads():
    """The six evaluation workloads with default parameters."""
    return [
        AlphaGeometryWorkload(),
        R2GuardWorkload(),
        GeLaToWorkload(),
        CtrlGWorkload(),
        NeuroPCWorkload(),
        LINCWorkload(),
    ]


__all__ = [
    "NeuroSymbolicWorkload",
    "TaskInstance",
    "WorkloadResult",
    "TASK_TO_WORKLOAD",
    "TransformerCostModel",
    "MODEL_ZOO",
    "AlphaGeometryWorkload",
    "R2GuardWorkload",
    "GeLaToWorkload",
    "CtrlGWorkload",
    "NeuroPCWorkload",
    "LINCWorkload",
    "all_workloads",
]
