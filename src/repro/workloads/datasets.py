"""Synthetic task generators standing in for the paper's ten datasets.

Each generator produces problem instances with *known ground truth by
construction* in the same structural class as the original benchmark, so
workload accuracy is measured (not assumed) while remaining reproducible
offline.  The substitution is documented per-dataset in DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.logic.fol.chase import HornRule
from repro.logic.fol.terms import Const, Predicate, Var


# --------------------------------------------------------------- geometry


@dataclass
class DeductionProblem:
    """A Horn-rule derivation task (AlphaGeometry-style deduction DB)."""

    facts: List[Predicate]
    rules: List[HornRule]
    goal: Predicate
    provable: bool
    candidate_constructions: List[Predicate] = field(default_factory=list)
    key_construction: Optional[Predicate] = None  # unlocks hard instances


_GEOMETRY_PREDICATES = ["cong", "para", "perp", "coll", "eqangle", "midp", "cyclic"]


def geometry_rules() -> List[HornRule]:
    """Transitivity/symmetry rules over geometric relations."""
    x, y, z = Var("x"), Var("y"), Var("z")
    rules: List[HornRule] = []
    for name in ("cong", "para", "eqangle", "coll", "cyclic"):
        rules.append(
            HornRule(Predicate(name, (x, z)), (Predicate(name, (x, y)), Predicate(name, (y, z))), name=f"{name}-trans")
        )
        rules.append(HornRule(Predicate(name, (y, x)), (Predicate(name, (x, y)),), name=f"{name}-sym"))
    # Cross-relation rules: perp ∘ perp → para; midp + coll → cong.
    rules.append(
        HornRule(Predicate("para", (x, z)), (Predicate("perp", (x, y)), Predicate("perp", (y, z))), name="perp-perp")
    )
    rules.append(
        HornRule(Predicate("cong", (x, y)), (Predicate("midp", (x, y)), Predicate("coll", (x, y))), name="midp-cong")
    )
    return rules


def generate_deduction_problem(
    num_points: int = 8,
    chain_length: int = 4,
    hard: bool = False,
    provable: bool = True,
    seed: int = 0,
) -> DeductionProblem:
    """A derivation task over a synthetic geometric configuration.

    Provable instances embed a relation chain whose closure reaches the
    goal; *hard* instances withhold one chain link, which appears among
    ``candidate_constructions`` (the auxiliary-point proposal the LLM
    stage must supply in AlphaGeometry).  Unprovable instances ask for a
    relation disconnected from the fact base.
    """
    rng = random.Random(seed)
    points = [Const(f"p{i}") for i in range(num_points)]
    relation = rng.choice(["cong", "para", "eqangle", "cyclic"])
    chain = rng.sample(points, min(chain_length + 1, num_points))
    facts: List[Predicate] = [
        Predicate(relation, (chain[i], chain[i + 1])) for i in range(len(chain) - 1)
    ]
    # Distractor facts over other relations.
    for _ in range(num_points):
        name = rng.choice(_GEOMETRY_PREDICATES)
        a, b = rng.sample(points, 2)
        facts.append(Predicate(name, (a, b)))

    goal = Predicate(relation, (chain[0], chain[-1]))
    key: Optional[Predicate] = None
    candidates: List[Predicate] = []
    if provable and hard:
        # Withhold a middle link; offer it among decoys.
        withheld_index = rng.randrange(len(chain) - 1)
        key = Predicate(relation, (chain[withheld_index], chain[withheld_index + 1]))
        facts = [f for f in facts if f != key]
        candidates = [key]
        for _ in range(5):
            name = rng.choice(_GEOMETRY_PREDICATES)
            a, b = rng.sample(points, 2)
            decoy = Predicate(name, (a, b))
            if decoy != key:
                candidates.append(decoy)
        rng.shuffle(candidates)
    if not provable:
        isolated = [Const(f"q{i}") for i in range(2)]
        goal = Predicate(relation, (isolated[0], isolated[1]))

    return DeductionProblem(facts, geometry_rules(), goal, provable, candidates, key)


# ----------------------------------------------------------- safety (PC)


@dataclass
class SafetyDataset:
    """Feature vectors + safety labels from a known rule structure."""

    features: List[Tuple[int, ...]]
    labels: List[int]
    num_features: int
    rule_weights: List[float]
    threshold: float


def generate_safety_dataset(
    num_features: int = 8,
    num_examples: int = 300,
    noise: float = 0.08,
    seed: int = 0,
) -> SafetyDataset:
    """Binary unsafety-category features; label = weighted rule vote.

    Mirrors R2-Guard's knowledge: categories (e.g. "violence", "fraud")
    combine through weighted logical rules into an unsafe verdict; label
    noise models annotation disagreement.
    """
    rng = random.Random(seed)
    weights = [rng.uniform(0.2, 1.0) for _ in range(num_features)]
    threshold = 0.45 * sum(weights)
    features: List[Tuple[int, ...]] = []
    labels: List[int] = []
    for _ in range(num_examples):
        x = tuple(int(rng.random() < 0.35) for _ in range(num_features))
        score = sum(w for w, bit in zip(weights, x) if bit)
        label = int(score > threshold)
        if rng.random() < noise:
            label = 1 - label
        features.append(x)
        labels.append(label)
    return SafetyDataset(features, labels, num_features, weights, threshold)


# ------------------------------------------------------- text (HMM tasks)


@dataclass
class TextCorpus:
    """Sequences from a hidden teacher HMM (synthetic language)."""

    sequences: List[List[int]]
    vocab_size: int
    teacher_states: int
    seed: int


def generate_text_corpus(
    vocab_size: int = 12,
    num_states: int = 6,
    num_sequences: int = 60,
    length: int = 16,
    seed: int = 0,
) -> TextCorpus:
    from repro.hmm.model import HMM

    teacher = HMM.random(num_states, vocab_size, seed=seed, concentration=0.5)
    rng = random.Random(seed + 1)
    sequences = [teacher.sample(length, rng)[1] for _ in range(num_sequences)]
    return TextCorpus(sequences, vocab_size, num_states, seed)


# ----------------------------------------------- attributes (NeuroPC/AwA2)


@dataclass
class AttributeDataset:
    """Zero-shot classification by attribute signatures (AwA2-style)."""

    class_signatures: List[Tuple[int, ...]]
    examples: List[Tuple[Tuple[float, ...], int]]  # (noisy attribute scores, class)
    num_attributes: int


def generate_attribute_dataset(
    num_classes: int = 6,
    num_attributes: int = 10,
    num_examples: int = 120,
    noise: float = 0.15,
    seed: int = 0,
) -> AttributeDataset:
    """Classes defined by binary attribute signatures; examples carry
    noisy neural attribute scores (probability the attribute is on)."""
    rng = random.Random(seed)
    signatures: List[Tuple[int, ...]] = []
    while len(signatures) < num_classes:
        signature = tuple(int(rng.random() < 0.5) for _ in range(num_attributes))
        if signature not in signatures:
            signatures.append(signature)
    examples: List[Tuple[Tuple[float, ...], int]] = []
    for _ in range(num_examples):
        cls = rng.randrange(num_classes)
        scores = []
        for bit in signatures[cls]:
            p = 1.0 - noise if bit else noise
            # Neural scores: beta-ish noise around the true probability.
            scores.append(min(1.0, max(0.0, p + rng.gauss(0, 0.1))))
        examples.append((tuple(scores), cls))
    return AttributeDataset(signatures, examples, num_attributes)


# ------------------------------------------------------------ FOL (LINC)


@dataclass
class EntailmentProblem:
    """A FOL entailment task with a constructed label."""

    theory: List[object]  # formulas
    goal: object
    entailed: bool


def generate_entailment_problem(
    depth: int = 3,
    num_distractors: int = 3,
    entailed: bool = True,
    redundancy: int = 2,
    seed: int = 0,
) -> EntailmentProblem:
    """Chained universally-quantified implications over unary predicates.

    Entailed instances close a predicate chain P0(a) → P1 → ... → Pd(a);
    non-entailed instances break one link (replace it with an unrelated
    implication), so resolution cannot reach the goal.

    ``redundancy`` adds shortcut rules (P_i → P_j already entailed by
    the chain) and entailed wide disjunctions — the natural-language
    restatements present in FOLIO/ProofWriter theories that REASON's
    Stage-2 pruning removes.  Shortcuts never span a broken link, so
    the entailment label is unaffected.
    """
    from repro.logic.fol.terms import ForAll, Implies, Or as FolOr

    rng = random.Random(seed)
    x = Var("x")
    constant = Const("c")
    predicates = [f"P{i}" for i in range(depth + 1)]
    theory: List[object] = [Predicate(predicates[0], (constant,))]
    broken = rng.randrange(depth) if not entailed else -1
    for i in range(depth):
        if i == broken:
            theory.append(
                ForAll(x, Implies(Predicate(f"Q{i}", (x,)), Predicate(predicates[i + 1], (x,))))
            )
        else:
            theory.append(
                ForAll(x, Implies(Predicate(predicates[i], (x,)), Predicate(predicates[i + 1], (x,))))
            )

    def intact(i: int, j: int) -> bool:
        return broken == -1 or j <= broken or i > broken

    added = 0
    attempts = 0
    while added < redundancy and attempts < 20:
        attempts += 1
        i = rng.randrange(depth - 1) if depth >= 2 else 0
        j = min(i + rng.randint(2, 3), depth)
        if j <= i + 1 or not intact(i, j):
            continue
        # Shortcut rule: entailed by the chain, hence redundant.
        theory.append(
            ForAll(x, Implies(Predicate(predicates[i], (x,)), Predicate(predicates[j], (x,))))
        )
        # Entailed wide disjunction: ¬P_i ∨ P_{i+1} ∨ P_j — subsumed by
        # the direct link, so its extra literal is prunable.
        theory.append(
            ForAll(
                x,
                FolOr(
                    Implies(Predicate(predicates[i], (x,)), Predicate(predicates[i + 1], (x,))),
                    Predicate(predicates[j], (x,)),
                ),
            )
        )
        added += 1
    for j in range(num_distractors):
        theory.append(
            ForAll(x, Implies(Predicate(f"R{j}", (x,)), Predicate(f"R{j + 1}", (x,))))
        )
    goal = Predicate(predicates[depth], (constant,))
    return EntailmentProblem(theory, goal, entailed)
