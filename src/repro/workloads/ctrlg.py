"""Ctrl-G-style workload: interactive text editing / infilling under
logical constraints (paper Table I, task CoAuthor; metric success rate).

Given a prefix and suffix, the system fills a middle span so the whole
sequence satisfies a DFA constraint (keyword present, banned symbol
absent) while staying likely under the sequence model.  Success means
the constraint holds *and* the infill's per-token log-likelihood clears
a fluency bar — the two failure modes the paper's 87% success rate
reflects.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.baselines.device import KernelClass, KernelProfile
from repro.hmm.constrained import DFAConstraint, constrained_decode
from repro.hmm.inference import log_likelihood
from repro.hmm.learn import baum_welch
from repro.hmm.model import HMM
from repro.workloads.base import NeuroSymbolicWorkload, TaskInstance, WorkloadResult
from repro.workloads.datasets import generate_text_corpus


class CtrlGWorkload(NeuroSymbolicWorkload):
    name = "Ctrl-G"
    tasks = ("CoAuthor",)
    metric = "Success rate"
    model_name = "7B"
    symbolic_runtime_share = 0.639  # paper Fig. 3(a)

    def __init__(
        self,
        num_states: int = 5,
        vocab_size: int = 10,
        fluency_margin: float = 1.35,
    ):
        self.num_states = num_states
        self.vocab_size = vocab_size
        self.fluency_margin = fluency_margin
        self._hmm: Optional[HMM] = None
        self._baseline_ll: Optional[float] = None

    def _sequence_model(self) -> Tuple[HMM, float]:
        if self._hmm is None:
            corpus = generate_text_corpus(
                self.vocab_size, self.num_states, num_sequences=40, length=16, seed=99
            )
            student = HMM.random(self.num_states, self.vocab_size, seed=7)
            fitted, _ = baum_welch(student, corpus.sequences, iterations=4)
            self._hmm = fitted
            per_token = [
                log_likelihood(fitted, seq) / len(seq) for seq in corpus.sequences
            ]
            self._baseline_ll = sum(per_token) / len(per_token)
        return self._hmm, self._baseline_ll  # type: ignore[return-value]

    def generate_instance(self, task: str, scale: str = "small", seed: int = 0) -> TaskInstance:
        if task not in self.tasks:
            raise ValueError(f"unknown task {task!r}")
        rng = random.Random(seed)
        hmm, _ = self._sequence_model()
        prefix = hmm.sample(4, rng)[1]
        suffix = hmm.sample(3, rng)[1]
        fill_length = 10 if scale == "large" else 6
        constraint_kind = rng.choice(["keyword", "forbid"])
        if constraint_kind == "keyword":
            constraint = [rng.randrange(self.vocab_size)]
        else:
            constraint = [rng.randrange(self.vocab_size)]
        return TaskInstance(
            task,
            scale,
            (prefix, suffix, fill_length, constraint_kind, constraint),
            seed=seed,
        )

    def solve(self, instance: TaskInstance) -> WorkloadResult:
        prefix, suffix, fill_length, kind, constraint = instance.payload
        hmm, baseline = self._sequence_model()
        if kind == "keyword":
            dfa = DFAConstraint.contains_word(constraint, self.vocab_size)
        else:
            dfa = DFAConstraint.forbids_symbol(constraint[0], self.vocab_size)
        result = constrained_decode(
            hmm, dfa, fill_length, rng=random.Random(instance.seed)
        )
        if not result.satisfied:
            return WorkloadResult(answer=None, correct=False, symbolic_ops=1)
        full = list(prefix) + result.sequence + list(suffix)
        per_token = log_likelihood(hmm, full) / len(full)
        fluent = per_token > baseline * self.fluency_margin  # LLs are negative
        ops = fill_length * self.num_states ** 2 * dfa.num_states
        return WorkloadResult(
            answer=result.sequence,
            correct=bool(fluent),
            symbolic_ops=ops,
            metadata={"per_token_ll": per_token, "baseline_ll": baseline},
        )

    def reason_kernel(self, instance: TaskInstance) -> HMM:
        hmm, _ = self._sequence_model()
        return hmm

    def calibration_sequences(self, instance: TaskInstance) -> List[List[int]]:
        hmm, _ = self._sequence_model()
        rng = random.Random(3)
        return [hmm.sample(12, rng)[1] for _ in range(8)]

    def symbolic_profiles(self, instance: TaskInstance) -> List[KernelProfile]:
        prefix, suffix, fill_length, kind, constraint = instance.payload
        dfa_states = len(constraint) + 1 if kind == "keyword" else 1
        ops = fill_length * self.num_states ** 2 * dfa_states * self.vocab_size
        # Ctrl-G reads/writes state probabilities iteratively (paper:
        # memory-bound HMM updates).
        return [
            KernelProfile(KernelClass.BAYESIAN, flops=2.0 * ops, bytes_accessed=10.0 * ops)
        ]

    def neural_tokens(self, instance: TaskInstance) -> Tuple[int, int]:
        scale_factor = 2 if instance.scale == "large" else 1
        return 384 * scale_factor, 96 * scale_factor
