"""Common workload interface.

A workload generates task instances, runs its symbolic stage on the real
substrates (so accuracy is measured, not assumed), and exposes kernel
profiles for the device cost models plus a REASON-executable kernel for
the accelerator model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.baselines.device import KernelProfile
from repro.hmm.model import HMM
from repro.logic.cnf import CNF
from repro.pc.circuit import Circuit
from repro.workloads.neural import MODEL_ZOO, TransformerCostModel


@dataclass
class TaskInstance:
    """One problem drawn from a task generator."""

    task: str
    scale: str  # "small" | "large"
    payload: object  # workload-specific problem
    ground_truth: object = None
    seed: int = 0


@dataclass
class WorkloadResult:
    """Outcome of solving one instance on the symbolic substrates."""

    answer: object
    correct: bool
    symbolic_ops: int = 0  # abstract op count of the symbolic stage
    metadata: Dict[str, float] = field(default_factory=dict)


ReasonKernel = Union[CNF, Circuit, HMM, Tuple]  # what runs on the accelerator


class NeuroSymbolicWorkload(abc.ABC):
    """Base class for the six evaluation workloads."""

    #: Workload display name (Table I row).
    name: str = ""
    #: Benchmark datasets this workload is evaluated on (Table IV rows).
    tasks: Tuple[str, ...] = ()
    #: Metric name the paper reports for each task.
    metric: str = "Accuracy"
    #: Neural model driving the pipeline.
    model_name: str = "7B"
    #: Fraction of end-to-end runtime in the symbolic stage on a GPU
    #: (paper Fig. 3(a) measurement, used to calibrate kernel volumes).
    symbolic_runtime_share: float = 0.5

    @property
    def model(self) -> TransformerCostModel:
        return MODEL_ZOO[self.model_name]

    # ----------------------------------------------------------- interface

    @abc.abstractmethod
    def generate_instance(self, task: str, scale: str = "small", seed: int = 0) -> TaskInstance:
        """Draw a synthetic instance of the given task."""

    @abc.abstractmethod
    def solve(self, instance: TaskInstance) -> WorkloadResult:
        """Run the symbolic stage for real and score the answer."""

    @abc.abstractmethod
    def reason_kernel(self, instance: TaskInstance) -> ReasonKernel:
        """The kernel REASON accelerates for this instance."""

    @abc.abstractmethod
    def symbolic_profiles(self, instance: TaskInstance) -> List[KernelProfile]:
        """Symbolic-stage kernels for the device cost models."""

    def neural_profiles(self, instance: TaskInstance) -> List[KernelProfile]:
        """Neural-stage kernels (default: one prompt + short generation)."""
        prompt, generated = self.neural_tokens(instance)
        return self.model.generation_profiles(prompt, generated)

    def neural_tokens(self, instance: TaskInstance) -> Tuple[int, int]:
        """(prompt tokens, generated tokens) for the neural stage."""
        scale_factor = 2 if instance.scale == "large" else 1
        return 256 * scale_factor, 64 * scale_factor

    # --------------------------------------------------------- conveniences

    def accuracy(self, task: str, num_instances: int = 20, scale: str = "small", seed: int = 0) -> float:
        """Fraction of instances solved correctly."""
        correct = 0
        for i in range(num_instances):
            instance = self.generate_instance(task, scale, seed + i)
            result = self.solve(instance)
            correct += int(result.correct)
        return correct / num_instances


#: Task → workload-class name (the Table IV row index).
TASK_TO_WORKLOAD: Dict[str, str] = {
    "IMO": "AlphaGeometry",
    "MiniF2F": "AlphaGeometry",
    "TwinSafety": "R2-Guard",
    "XSTest": "R2-Guard",
    "CommonGen": "GeLaTo",
    "News": "GeLaTo",
    "CoAuthor": "Ctrl-G",
    "AwA2": "NeuroPC",
    "FOLIO": "LINC",
    "ProofWriter": "LINC",
}
