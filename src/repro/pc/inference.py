"""Exact inference on probabilistic circuits.

All queries are a single bottom-up pass in topological order — the
"bottom-up probability aggregation" REASON executes on its tree PEs
(paper Fig. 5).  Evidence maps variable → value; missing variables are
marginalized by letting their leaves sum out (indicator trick).
"""

from __future__ import annotations

import math
import random as _random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.pc.circuit import Circuit, CircuitNode, LeafNode, ProductNode, SumNode

Evidence = Dict[int, Optional[int]]


def _evaluate_all(circuit: Circuit, evidence: Evidence) -> Dict[int, float]:
    """Bottom-up evaluation; returns node_id → value."""
    values: Dict[int, float] = {}
    for node in circuit.topological_order():
        if isinstance(node, LeafNode):
            values[node.node_id] = node.prob(evidence.get(node.variable))
        elif isinstance(node, ProductNode):
            out = 1.0
            for child in node.children:
                out *= values[child.node_id]
            values[node.node_id] = out
        elif isinstance(node, SumNode):
            out = 0.0
            for child, weight in zip(node.children, node.weights):
                out += weight * values[child.node_id]
            values[node.node_id] = out
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node type: {node!r}")
    return values


def likelihood(circuit: Circuit, evidence: Evidence) -> float:
    """P(evidence): unnormalized circuit output for the evidence."""
    return _evaluate_all(circuit, evidence)[circuit.root.node_id]


def log_likelihood(circuit: Circuit, evidence: Evidence) -> float:
    """log P(evidence); -inf when the evidence has zero mass."""
    value = likelihood(circuit, evidence)
    return math.log(value) if value > 0 else float("-inf")


def partition_function(circuit: Circuit) -> float:
    """Total mass of the circuit (1.0 for a normalized circuit)."""
    return likelihood(circuit, {})


def marginal(circuit: Circuit, evidence: Evidence) -> float:
    """Normalized marginal probability of the evidence."""
    z = partition_function(circuit)
    if z == 0:
        raise ValueError("circuit has zero total mass")
    return likelihood(circuit, evidence) / z


def conditional(circuit: Circuit, query: Evidence, given: Evidence) -> float:
    """P(query | given) with consistency checks on overlapping variables."""
    overlap = set(query) & set(given)
    for variable in overlap:
        if query[variable] != given[variable]:
            return 0.0
    denominator = likelihood(circuit, given)
    if denominator == 0:
        raise ValueError("conditioning evidence has zero probability")
    joint = dict(given)
    joint.update(query)
    return likelihood(circuit, joint) / denominator


def map_state(circuit: Circuit, evidence: Optional[Evidence] = None) -> Tuple[Dict[int, int], float]:
    """MAP assignment via a max-product upward pass and downward decode.

    Exact for deterministic circuits; for general circuits this is the
    standard max-product approximation (maximizer of the circuit's
    max-semiring value).
    """
    evidence = evidence or {}
    values: Dict[int, float] = {}
    best_child: Dict[int, int] = {}
    best_value: Dict[int, int] = {}

    for node in circuit.topological_order():
        if isinstance(node, LeafNode):
            fixed = evidence.get(node.variable)
            if fixed is not None:
                values[node.node_id] = node.prob(fixed)
                best_value[node.node_id] = fixed
            else:
                arg = int(np.argmax(node.probabilities))
                values[node.node_id] = float(node.probabilities[arg])
                best_value[node.node_id] = arg
        elif isinstance(node, ProductNode):
            out = 1.0
            for child in node.children:
                out *= values[child.node_id]
            values[node.node_id] = out
        elif isinstance(node, SumNode):
            best, best_idx = -1.0, 0
            for idx, (child, weight) in enumerate(zip(node.children, node.weights)):
                candidate = weight * values[child.node_id]
                if candidate > best:
                    best, best_idx = candidate, idx
            values[node.node_id] = best
            best_child[node.node_id] = best_idx

    assignment: Dict[int, int] = {
        k: v for k, v in evidence.items() if v is not None
    }
    stack: List[CircuitNode] = [circuit.root]
    while stack:
        node = stack.pop()
        if isinstance(node, LeafNode):
            assignment.setdefault(node.variable, best_value[node.node_id])
        elif isinstance(node, ProductNode):
            stack.extend(node.children)
        elif isinstance(node, SumNode):
            stack.append(node.children[best_child[node.node_id]])
    return assignment, values[circuit.root.node_id]


def sample(circuit: Circuit, rng: Optional[_random.Random] = None) -> Dict[int, int]:
    """Ancestral sampling: descend sums by weight, leaves by distribution."""
    rng = rng or _random.Random()
    assignment: Dict[int, int] = {}
    stack: List[CircuitNode] = [circuit.root]
    while stack:
        node = stack.pop()
        if isinstance(node, LeafNode):
            probs = node.probabilities / node.probabilities.sum()
            r = rng.random()
            cumulative = 0.0
            for value, p in enumerate(probs):
                cumulative += p
                if r <= cumulative:
                    assignment[node.variable] = value
                    break
            else:  # numerical tail
                assignment[node.variable] = len(probs) - 1
        elif isinstance(node, ProductNode):
            stack.extend(node.children)
        elif isinstance(node, SumNode):
            weights = node.weights / node.weights.sum()
            r = rng.random()
            cumulative = 0.0
            chosen = node.children[-1]
            for child, w in zip(node.children, weights):
                cumulative += w
                if r <= cumulative:
                    chosen = child
                    break
            stack.append(chosen)
    return assignment


def expected_flops(circuit: Circuit) -> int:
    """Arithmetic operations of one bottom-up pass (adds + multiplies).

    This is the per-query work REASON's tree PEs execute and the unit
    the performance model charges for probabilistic kernels.
    """
    flops = 0
    for node in circuit.topological_order():
        arity = len(node.children)
        if isinstance(node, ProductNode):
            flops += max(arity - 1, 0)
        elif isinstance(node, SumNode):
            flops += arity + max(arity - 1, 0)  # weight multiplies + adds
    return flops
