"""Probabilistic circuits (PCs): tractable probabilistic models as DAGs.

Implements the paper's probabilistic-reasoning primitive (Sec. II-C,
Eq. 1): circuits of sum, product and leaf nodes supporting exact
marginal/conditional/MAP inference in time linear in circuit size,
top-down circuit flows (the quantity REASON's adaptive pruning ranks
edges by), EM parameter learning, random structure generation, and
compilation of CNF formulas into deterministic circuits for weighted
model counting.
"""

from repro.pc.circuit import (
    Circuit,
    CircuitNode,
    LeafNode,
    ProductNode,
    SumNode,
    bernoulli_leaf,
    categorical_leaf,
    indicator_leaf,
)
from repro.pc.inference import (
    log_likelihood,
    likelihood,
    marginal,
    conditional,
    map_state,
    sample,
)
from repro.pc.flows import edge_flows, node_flows, dataset_edge_flows
from repro.pc.learn import (
    em_step,
    fit_em,
    random_circuit,
    random_binary_tree_circuit,
)
from repro.pc.compile_logic import compile_cnf_to_circuit, weighted_model_count

__all__ = [
    "Circuit",
    "CircuitNode",
    "LeafNode",
    "ProductNode",
    "SumNode",
    "bernoulli_leaf",
    "categorical_leaf",
    "indicator_leaf",
    "log_likelihood",
    "likelihood",
    "marginal",
    "conditional",
    "map_state",
    "sample",
    "edge_flows",
    "node_flows",
    "dataset_edge_flows",
    "em_step",
    "fit_em",
    "random_circuit",
    "random_binary_tree_circuit",
    "compile_cnf_to_circuit",
    "weighted_model_count",
]
