"""Parameter learning and structure generation for probabilistic circuits.

EM via circuit flows: expected edge usage over the data gives the
sufficient statistics for sum weights and leaf distributions in closed
form — the same flow quantity REASON's pruning stage ranks edges by, so
learning and pruning share one machinery.
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.pc.circuit import (
    Circuit,
    CircuitNode,
    LeafNode,
    ProductNode,
    SumNode,
    bernoulli_leaf,
)
from repro.pc.flows import node_flows
from repro.pc.inference import Evidence, _evaluate_all, log_likelihood


def em_step(circuit: Circuit, dataset: Sequence[Evidence], smoothing: float = 0.1) -> Circuit:
    """One EM iteration, updating sum weights and leaf tables in place.

    Expected counts come from top-down flows; ``smoothing`` is a
    Laplace-style pseudo-count that keeps probabilities strictly
    positive.
    """
    sum_counts: Dict[int, np.ndarray] = {}
    leaf_counts: Dict[int, np.ndarray] = {}
    nodes = circuit.topological_order()
    for node in nodes:
        if isinstance(node, SumNode):
            sum_counts[node.node_id] = np.zeros(len(node.children))
        elif isinstance(node, LeafNode):
            leaf_counts[node.node_id] = np.zeros(len(node.probabilities))

    for evidence in dataset:
        values = _evaluate_all(circuit, evidence)
        flows = node_flows(circuit, evidence)
        for node in nodes:
            if isinstance(node, SumNode):
                parent_value = values[node.node_id]
                if parent_value <= 0:
                    continue
                flow = flows[node.node_id]
                for idx, (child, weight) in enumerate(zip(node.children, node.weights)):
                    share = weight * values[child.node_id] / parent_value
                    sum_counts[node.node_id][idx] += share * flow
            elif isinstance(node, LeafNode):
                value = evidence.get(node.variable)
                if value is not None:
                    leaf_counts[node.node_id][value] += flows[node.node_id]

    for node in nodes:
        if isinstance(node, SumNode):
            counts = sum_counts[node.node_id] + smoothing
            node.weights = counts / counts.sum()
        elif isinstance(node, LeafNode):
            counts = leaf_counts[node.node_id] + smoothing
            node.probabilities = counts / counts.sum()
    return circuit


def fit_em(
    circuit: Circuit,
    dataset: Sequence[Evidence],
    iterations: int = 10,
    smoothing: float = 0.1,
    tolerance: float = 1e-6,
) -> Tuple[Circuit, List[float]]:
    """Run EM to convergence; returns the circuit and the LL trajectory."""
    history: List[float] = []
    for _ in range(iterations):
        em_step(circuit, dataset, smoothing)
        total = sum(log_likelihood(circuit, evidence) for evidence in dataset)
        history.append(total / max(len(dataset), 1))
        if len(history) >= 2 and abs(history[-1] - history[-2]) < tolerance:
            break
    return circuit, history


def random_circuit(
    num_vars: int,
    depth: int = 3,
    sum_children: int = 3,
    seed: Optional[int] = None,
) -> Circuit:
    """Random smooth & decomposable circuit over binary variables.

    Recursively splits the variable scope at product nodes and mixes
    ``sum_children`` alternative decompositions at sum nodes — the
    region-graph style structure used by learned PCs.
    """
    rng = _random.Random(seed)

    def build(scope: List[int], level: int) -> CircuitNode:
        if len(scope) == 1:
            return bernoulli_leaf(scope[0], rng.uniform(0.1, 0.9))
        if level <= 0:
            # Fully factorize the remaining scope.
            return ProductNode([build([v], 0) for v in scope])
        mixtures: List[CircuitNode] = []
        for _ in range(sum_children):
            shuffled = scope[:]
            rng.shuffle(shuffled)
            cut = rng.randint(1, len(shuffled) - 1)
            left = sorted(shuffled[:cut])
            right = sorted(shuffled[cut:])
            mixtures.append(
                ProductNode([build(left, level - 1), build(right, level - 1)])
            )
        weights = [rng.uniform(0.2, 1.0) for _ in mixtures]
        node = SumNode(mixtures, weights)
        node.normalize()
        return node

    circuit = Circuit(build(list(range(num_vars)), depth))
    circuit.validate()
    return circuit


def random_binary_tree_circuit(num_vars: int, seed: Optional[int] = None) -> Circuit:
    """A balanced binary-tree-structured circuit (HCLT-like skeleton).

    Every internal scope split is a sum over two product decompositions;
    already in two-input form, so it maps directly onto REASON's tree
    PEs without regularization.
    """
    rng = _random.Random(seed)

    def build(scope: List[int]) -> CircuitNode:
        if len(scope) == 1:
            return bernoulli_leaf(scope[0], rng.uniform(0.1, 0.9))
        mid = len(scope) // 2
        left, right = scope[:mid], scope[mid:]
        alternatives = [
            ProductNode([build(left), build(right)]),
            ProductNode([build(left), build(right)]),
        ]
        node = SumNode(alternatives, [rng.uniform(0.2, 1.0) for _ in alternatives])
        node.normalize()
        return node

    circuit = Circuit(build(list(range(num_vars))))
    circuit.validate()
    return circuit


def sample_dataset(
    circuit: Circuit, size: int, seed: Optional[int] = None
) -> List[Evidence]:
    """Draw a dataset of full assignments from the circuit."""
    from repro.pc.inference import sample

    rng = _random.Random(seed)
    return [sample(circuit, rng) for _ in range(size)]
