"""Compiling CNF formulas into deterministic probabilistic circuits.

Knowledge compilation is the bridge between REASON's symbolic and
probabilistic kernels: a CNF constraint compiled into a smooth,
deterministic, decomposable circuit supports weighted model counting
(WMC) and constrained generation — the machinery behind the paper's
GeLaTo/Ctrl-G workloads, where an HMM's outputs are conjoined with a
logical constraint circuit.

The compiler is an exhaustive-DPLL (Shannon expansion) with formula
caching, producing an OBDD-style circuit: linear-size for small or
structured formulas, exponential in the worst case (WMC is #P-hard).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.logic.cnf import CNF
from repro.pc.circuit import (
    Circuit,
    CircuitNode,
    LeafNode,
    ProductNode,
    SumNode,
    indicator_leaf,
)
from repro.pc.inference import likelihood

_TRUE = "TRUE"  # sentinel: satisfied formula over an empty remaining scope
_Result = Union[CircuitNode, str, None]  # node | _TRUE | None (= False)


def compile_cnf_to_circuit(
    formula: CNF,
    variable_order: Optional[Sequence[int]] = None,
) -> Circuit:
    """Compile a CNF into a smooth deterministic decomposable circuit.

    The circuit's variables are the CNF's variables re-indexed to
    ``var - 1``; its unnormalized output on a complete assignment is 1
    when the assignment satisfies the formula, else 0.  Summing out all
    variables therefore yields the model count.

    Raises ``ValueError`` for formulas over more than 30 variables (the
    exhaustive compiler targets the constraint sizes the paper's
    workloads use).
    """
    if variable_order is None:
        variables = sorted(formula.variables())
    else:
        variables = list(variable_order)
    if len(variables) > 30:
        raise ValueError("exhaustive compilation limited to 30 variables")

    cache: Dict[Tuple, _Result] = {}
    smooth_cache: Dict[Tuple[int, ...], CircuitNode] = {}

    def free_scope(remaining: Tuple[int, ...]) -> CircuitNode:
        """Uniform positive circuit over unconstrained variables (smoothing)."""
        if remaining not in smooth_cache:
            leaves: List[CircuitNode] = [LeafNode(v - 1, [1.0, 1.0]) for v in remaining]
            smooth_cache[remaining] = leaves[0] if len(leaves) == 1 else ProductNode(leaves)
        return smooth_cache[remaining]

    def build(working: CNF, index: int) -> _Result:
        """Circuit over ``variables[index:]``, _TRUE, or None for False."""
        if any(c.is_empty for c in working.clauses):
            return None
        remaining = tuple(variables[index:])
        if not working.clauses:
            return free_scope(remaining) if remaining else _TRUE
        key = (index, tuple(sorted(c.literals for c in working.clauses)))
        if key in cache:
            return cache[key]

        variable = variables[index]
        rest = tuple(variables[index + 1 :])
        branches: List[CircuitNode] = []
        for value, lit in ((1, variable), (0, -variable)):
            sub = build(working.condition(lit), index + 1)
            if sub is None:
                continue
            indicator = indicator_leaf(variable - 1, value)
            if sub is _TRUE:
                branches.append(indicator)
            else:
                branches.append(ProductNode([indicator, sub]))
        result: _Result
        if not branches:
            result = None
        elif len(branches) == 1:
            result = branches[0]
        else:
            result = SumNode(branches, [1.0, 1.0])
        cache[key] = result
        return result

    root = build(formula.simplify(), 0)
    if root is None or root is _TRUE:
        # Constant circuit over the full scope: 0 everywhere (UNSAT) or
        # 1 everywhere (no constraints).
        fill = 0.0 if root is None else 1.0
        if not variables:
            variables = [1]
        leaves: List[CircuitNode] = [LeafNode(v - 1, [fill, fill]) for v in variables]
        root = leaves[0] if len(leaves) == 1 else ProductNode(leaves)
    circuit = Circuit(root, {v - 1: 2 for v in variables})
    return circuit


def weighted_model_count(
    formula: CNF,
    weights: Optional[Dict[int, float]] = None,
) -> float:
    """WMC via compilation: Σ over models of Π literal weights.

    ``weights[v]`` is the weight of ``v`` being true; a false ``v``
    weighs ``1 - weights[v]``.  Omitted variables weigh 1 for both
    phases, so with no weights at all the result is the model count.
    """
    circuit = compile_cnf_to_circuit(formula)
    if weights:
        for node in circuit.topological_order():
            if isinstance(node, LeafNode) and (node.variable + 1) in weights:
                p = weights[node.variable + 1]
                scaled = node.probabilities.copy()
                scaled[1] *= p
                scaled[0] *= 1.0 - p
                node.probabilities = scaled
    return likelihood(circuit, {})


def model_count(formula: CNF) -> int:
    """Exact #SAT by compilation."""
    return round(weighted_model_count(formula))
