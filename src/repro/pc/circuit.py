"""Probabilistic circuit structure: sum, product and leaf nodes.

A circuit is a rooted DAG.  Leaves carry primitive distributions over a
single discrete variable; product nodes factorize over disjoint variable
scopes; sum nodes mix their children with non-negative normalized
weights (paper Eq. 1).  Structural properties — smoothness (sum children
share a scope) and decomposability (product children have disjoint
scopes) — are what make inference tractable, and :meth:`Circuit.validate`
checks them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np


class CircuitNode:
    """Base class for circuit nodes; nodes are identified by object id."""

    _ids = itertools.count()

    def __init__(self) -> None:
        self.node_id: int = next(CircuitNode._ids)

    @property
    def children(self) -> Tuple["CircuitNode", ...]:
        return ()

    def scope(self) -> FrozenSet[int]:
        """Variable indices this node's distribution ranges over."""
        raise NotImplementedError


class LeafNode(CircuitNode):
    """A primitive distribution over one discrete variable.

    ``probabilities[v]`` is P(X = v); an *indicator* leaf puts all mass
    on a single value and is used when compiling logical constraints.
    """

    def __init__(self, variable: int, probabilities: Sequence[float]):
        super().__init__()
        probs = np.asarray(probabilities, dtype=float)
        if probs.ndim != 1 or len(probs) < 1:
            raise ValueError("leaf needs a 1-D probability vector")
        if np.any(probs < 0):
            raise ValueError("leaf probabilities must be non-negative")
        self.variable = variable
        self.probabilities = probs

    def scope(self) -> FrozenSet[int]:
        return frozenset([self.variable])

    def prob(self, value: Optional[int]) -> float:
        """P(X = value); a None value marginalizes the leaf (sums to total mass)."""
        if value is None:
            return float(self.probabilities.sum())
        if not 0 <= value < len(self.probabilities):
            return 0.0
        return float(self.probabilities[value])

    def __repr__(self) -> str:
        return f"Leaf(X{self.variable}, {np.round(self.probabilities, 3).tolist()})"


class ProductNode(CircuitNode):
    """Factorization over children with disjoint scopes."""

    def __init__(self, children: Sequence[CircuitNode]):
        super().__init__()
        if not children:
            raise ValueError("product node needs at least one child")
        self._children = tuple(children)

    @property
    def children(self) -> Tuple[CircuitNode, ...]:
        return self._children

    def scope(self) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for child in self._children:
            out |= child.scope()
        return out

    def __repr__(self) -> str:
        return f"Product({len(self._children)} children)"


class SumNode(CircuitNode):
    """Weighted mixture of children sharing a scope."""

    def __init__(self, children: Sequence[CircuitNode], weights: Sequence[float]):
        super().__init__()
        if not children:
            raise ValueError("sum node needs at least one child")
        if len(children) != len(weights):
            raise ValueError("one weight per child required")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0):
            raise ValueError("sum weights must be non-negative")
        self._children = tuple(children)
        self.weights = w

    @property
    def children(self) -> Tuple[CircuitNode, ...]:
        return self._children

    def scope(self) -> FrozenSet[int]:
        out: FrozenSet[int] = frozenset()
        for child in self._children:
            out |= child.scope()
        return out

    def normalize(self) -> None:
        total = self.weights.sum()
        if total > 0:
            self.weights = self.weights / total

    def __repr__(self) -> str:
        return f"Sum({len(self._children)} children, w={np.round(self.weights, 3).tolist()})"


@dataclass
class Circuit:
    """A rooted probabilistic circuit.

    ``num_states[v]`` gives the cardinality of variable ``v``; binary
    variables default to 2 states when not specified.
    """

    root: CircuitNode
    num_states: Dict[int, int] = field(default_factory=dict)
    # Memoized (root, order): children tuples are immutable, so the
    # order is a pure function of the root node's identity.
    _topo_cache: Optional[Tuple[CircuitNode, List[CircuitNode]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for variable in self.variables():
            self.num_states.setdefault(variable, 2)

    def variables(self) -> FrozenSet[int]:
        return self.root.scope()

    def topological_order(self) -> List[CircuitNode]:
        """Children-before-parents order (bottom-up evaluation order)."""
        cached = self._topo_cache
        if cached is not None and cached[0] is self.root:
            return list(cached[1])
        order: List[CircuitNode] = []
        visited: set = set()
        # Iterative post-order DFS (the recursive version overflow-limits
        # deep circuits and pays a Python call per node).
        stack: List[Tuple[CircuitNode, bool]] = [(self.root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if node.node_id in visited:
                continue
            visited.add(node.node_id)
            stack.append((node, True))
            for child in reversed(node.children):
                if child.node_id not in visited:
                    stack.append((child, False))
        self._topo_cache = (self.root, order)
        return list(order)

    def nodes(self) -> List[CircuitNode]:
        return self.topological_order()

    def edges(self) -> List[Tuple[CircuitNode, CircuitNode]]:
        """All (parent, child) pairs."""
        out = []
        for node in self.topological_order():
            for child in node.children:
                out.append((node, child))
        return out

    @property
    def num_nodes(self) -> int:
        return len(self.topological_order())

    @property
    def num_edges(self) -> int:
        return len(self.edges())

    @property
    def num_parameters(self) -> int:
        """Free parameters: sum weights plus leaf probabilities."""
        count = 0
        for node in self.topological_order():
            if isinstance(node, SumNode):
                count += len(node.weights)
            elif isinstance(node, LeafNode):
                count += len(node.probabilities)
        return count

    def is_smooth(self) -> bool:
        """Every sum node's children share the same scope."""
        for node in self.topological_order():
            if isinstance(node, SumNode):
                scopes = {child.scope() for child in node.children}
                if len(scopes) > 1:
                    return False
        return True

    def is_decomposable(self) -> bool:
        """Every product node's children have pairwise disjoint scopes."""
        for node in self.topological_order():
            if isinstance(node, ProductNode):
                seen: set = set()
                for child in node.children:
                    child_scope = child.scope()
                    if seen & child_scope:
                        return False
                    seen |= child_scope
        return True

    def is_deterministic(self, max_assignments: int = 4096) -> bool:
        """Every sum node has at most one non-zero child per assignment.

        Checked by enumeration over the (small) joint assignment space;
        determinism enables exact MAP and model counting.
        """
        from repro.pc.inference import _evaluate_all  # local import avoids a cycle

        variables = sorted(self.variables())
        spaces = [range(self.num_states[v]) for v in variables]
        total = 1
        for space in spaces:
            total *= len(space)
        if total > max_assignments:
            raise ValueError(
                f"assignment space {total} too large for determinism check"
            )
        sums = [n for n in self.topological_order() if isinstance(n, SumNode)]
        for assignment_values in itertools.product(*spaces):
            evidence = dict(zip(variables, assignment_values))
            values = _evaluate_all(self, evidence)
            for node in sums:
                nonzero = sum(
                    1
                    for child, weight in zip(node.children, node.weights)
                    if weight > 0 and values[child.node_id] > 0
                )
                if nonzero > 1:
                    return False
        return True

    def validate(self) -> None:
        """Raise ValueError unless the circuit is smooth and decomposable."""
        if not self.is_smooth():
            raise ValueError("circuit is not smooth")
        if not self.is_decomposable():
            raise ValueError("circuit is not decomposable")

    def max_depth(self) -> int:
        """Longest root-to-leaf path length (edges)."""
        depth: Dict[int, int] = {}
        for node in self.topological_order():
            if not node.children:
                depth[node.node_id] = 0
            else:
                depth[node.node_id] = 1 + max(depth[c.node_id] for c in node.children)
        return depth[self.root.node_id]

    def max_fan_in(self) -> int:
        return max((len(n.children) for n in self.topological_order()), default=0)


def bernoulli_leaf(variable: int, p_true: float) -> LeafNode:
    """Binary leaf with P(X=1) = p_true."""
    if not 0.0 <= p_true <= 1.0:
        raise ValueError("p_true must lie in [0, 1]")
    return LeafNode(variable, [1.0 - p_true, p_true])


def categorical_leaf(variable: int, probabilities: Sequence[float]) -> LeafNode:
    """Categorical leaf; probabilities are normalized."""
    probs = np.asarray(probabilities, dtype=float)
    total = probs.sum()
    if total <= 0:
        raise ValueError("categorical leaf needs positive total mass")
    return LeafNode(variable, probs / total)


def indicator_leaf(variable: int, value: int, num_states: int = 2) -> LeafNode:
    """Leaf putting all mass on one value (logical literal as a leaf)."""
    probs = np.zeros(num_states)
    probs[value] = 1.0
    return LeafNode(variable, probs)
