"""Top-down circuit flows (paper Sec. IV-B-b).

For input ``x`` the flow through sum-edge ``(n, c)`` is

    F_{n,c}(x) = (θ_{n,c} · p_c(x) / p_n(x)) · F_n(x)

with ``F_root(x) = 1``: the fraction of the root's probability mass that
passes through the edge.  Cumulative flows over a dataset rank edges for
REASON's adaptive pruning; the decrease in average log-likelihood caused
by deleting an edge is bounded by its mean flow.

Implementation: the circuit is flattened once into a dense plan (node
order, child index arrays, edge slots) and every query evaluates the
whole evidence batch as numpy rows — one bottom-up value pass and one
top-down flow pass for an entire calibration dataset, instead of three
interpreted traversals per input.  All element-wise operations apply the
same IEEE-754 double operations in the same order as the reference
scalar recurrences, so flows are bit-identical to per-input evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.pc.circuit import Circuit, LeafNode, ProductNode, SumNode
from repro.pc.inference import Evidence

EdgeKey = Tuple[int, int]  # (parent node_id, child node_id)

_LEAF, _PRODUCT, _SUM = 0, 1, 2


class _FlowPlan:
    """Flattened traversal plan for one circuit root."""

    __slots__ = ("root", "order", "entries", "edge_keys", "root_index")

    def __init__(self, circuit: Circuit):
        order = circuit.topological_order()
        self.root = circuit.root
        self.order = order
        index = {node.node_id: i for i, node in enumerate(order)}
        self.root_index = index[circuit.root.node_id]
        # entries: (kind, dense index, node, child dense indices, edge slot)
        self.entries: List[Tuple[int, int, object, Tuple[int, ...], int]] = []
        self.edge_keys: List[EdgeKey] = []
        for node in order:
            dense = index[node.node_id]
            if isinstance(node, LeafNode):
                self.entries.append((_LEAF, dense, node, (), -1))
            elif isinstance(node, ProductNode):
                children = tuple(index[c.node_id] for c in node.children)
                self.entries.append((_PRODUCT, dense, node, children, -1))
            elif isinstance(node, SumNode):
                children = tuple(index[c.node_id] for c in node.children)
                slot = len(self.edge_keys)
                self.entries.append((_SUM, dense, node, children, slot))
                for child in node.children:
                    self.edge_keys.append((node.node_id, child.node_id))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown node type: {node!r}")


def _plan_for(circuit: Circuit) -> _FlowPlan:
    plan = getattr(circuit, "_flow_plan", None)
    if plan is None or plan.root is not circuit.root:
        plan = _FlowPlan(circuit)
        circuit._flow_plan = plan
    return plan


def _evaluate_batch(plan: _FlowPlan, dataset: Sequence[Evidence]) -> np.ndarray:
    """Bottom-up values, one row per node and one column per evidence.

    Element-wise accumulation order matches the scalar evaluator, so
    each column is bit-identical to ``_evaluate_all`` on that evidence.
    """
    m = len(dataset)
    values = np.empty((len(plan.order), m), dtype=float)
    for kind, dense, node, children, _ in plan.entries:
        if kind == _LEAF:
            row = values[dense]
            variable = node.variable
            prob = node.prob
            for j, evidence in enumerate(dataset):
                row[j] = prob(evidence.get(variable))
        elif kind == _PRODUCT:
            row = values[children[0]].copy()
            for child in children[1:]:
                row *= values[child]
            values[dense] = row
        else:  # _SUM
            row = np.zeros(m)
            for child, weight in zip(children, node.weights):
                row += weight * values[child]
            values[dense] = row
    return values


def _flow_batch(
    plan: _FlowPlan, values: np.ndarray, want_edges: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Top-down flows per node (and per sum edge when requested)."""
    num_nodes, m = values.shape
    flows = np.zeros((num_nodes, m))
    flows[plan.root_index] = 1.0
    edge_values = (
        np.zeros((len(plan.edge_keys), m)) if want_edges else np.zeros((0, m))
    )
    for kind, dense, node, children, slot in reversed(plan.entries):
        if kind == _LEAF:
            continue
        flow = flows[dense]
        if kind == _PRODUCT:
            # A product passes its full flow to every child.
            if flow.any():
                for child in children:
                    flows[child] += flow
            continue
        parent_value = values[dense]
        # Contribution ((θ·p_c)/p_n)·F_n masked where it is skipped by
        # the scalar recurrence; adding the masked zeros is exact
        # because every flow is non-negative.
        mask = (parent_value > 0) & (flow != 0.0)
        any_live = mask.any()
        for offset, (child, weight) in enumerate(zip(children, node.weights)):
            if any_live:
                contribution = np.divide(
                    weight * values[child],
                    parent_value,
                    out=np.zeros(m),
                    where=mask,
                )
                contribution *= flow
                flows[child] += contribution
            else:
                contribution = np.zeros(m)
            if want_edges:
                edge_values[slot + offset] = contribution
    return flows, edge_values


def node_flows(circuit: Circuit, evidence: Evidence) -> Dict[int, float]:
    """Top-down flow F_n(x) reaching each node for one input."""
    plan = _plan_for(circuit)
    values = _evaluate_batch(plan, [evidence])
    flows, _ = _flow_batch(plan, values, want_edges=False)
    return {
        node.node_id: float(flows[i, 0]) for i, node in enumerate(plan.order)
    }


def edge_flows(circuit: Circuit, evidence: Evidence) -> Dict[EdgeKey, float]:
    """Flow through every sum edge for one input."""
    plan = _plan_for(circuit)
    values = _evaluate_batch(plan, [evidence])
    _, edge_values = _flow_batch(plan, values, want_edges=True)
    return {
        key: float(edge_values[k, 0]) for k, key in enumerate(plan.edge_keys)
    }


def dataset_edge_flows(
    circuit: Circuit, dataset: Iterable[Evidence]
) -> Tuple[Dict[EdgeKey, float], int]:
    """Cumulative edge flows F_{n,c}(D) = Σ_x F_{n,c}(x) over a dataset.

    Returns the flow map and the number of inputs accumulated.
    """
    data = list(dataset)
    if not data:
        return {}, 0
    plan = _plan_for(circuit)
    values = _evaluate_batch(plan, data)
    _, edge_values = _flow_batch(plan, values, want_edges=True)
    # Accumulate one input at a time so each total is the same ordered
    # float sum the per-input loop produced.
    totals = np.zeros(len(plan.edge_keys))
    for j in range(len(data)):
        totals += edge_values[:, j]
    return (
        {key: float(totals[k]) for k, key in enumerate(plan.edge_keys)},
        len(data),
    )


def flow_pruning_bound(cumulative_flow: float, dataset_size: int) -> float:
    """Paper's bound: Δ log L ≤ F_{n,c}(D) / |D| for removing one edge."""
    if dataset_size <= 0:
        raise ValueError("dataset_size must be positive")
    return cumulative_flow / dataset_size
