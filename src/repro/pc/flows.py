"""Top-down circuit flows (paper Sec. IV-B-b).

For input ``x`` the flow through sum-edge ``(n, c)`` is

    F_{n,c}(x) = (θ_{n,c} · p_c(x) / p_n(x)) · F_n(x)

with ``F_root(x) = 1``: the fraction of the root's probability mass that
passes through the edge.  Cumulative flows over a dataset rank edges for
REASON's adaptive pruning; the decrease in average log-likelihood caused
by deleting an edge is bounded by its mean flow.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.pc.circuit import Circuit, ProductNode, SumNode
from repro.pc.inference import Evidence, _evaluate_all

EdgeKey = Tuple[int, int]  # (parent node_id, child node_id)


def node_flows(circuit: Circuit, evidence: Evidence) -> Dict[int, float]:
    """Top-down flow F_n(x) reaching each node for one input."""
    values = _evaluate_all(circuit, evidence)
    flows: Dict[int, float] = {node.node_id: 0.0 for node in circuit.topological_order()}
    flows[circuit.root.node_id] = 1.0
    for node in reversed(circuit.topological_order()):
        flow = flows[node.node_id]
        if flow == 0.0:
            continue
        if isinstance(node, SumNode):
            parent_value = values[node.node_id]
            if parent_value == 0.0:
                continue
            for child, weight in zip(node.children, node.weights):
                share = weight * values[child.node_id] / parent_value
                flows[child.node_id] += share * flow
        elif isinstance(node, ProductNode):
            # A product passes its full flow to every child.
            for child in node.children:
                flows[child.node_id] += flow
    return flows


def edge_flows(circuit: Circuit, evidence: Evidence) -> Dict[EdgeKey, float]:
    """Flow through every sum edge for one input."""
    values = _evaluate_all(circuit, evidence)
    flows = node_flows(circuit, evidence)
    out: Dict[EdgeKey, float] = {}
    for node in circuit.topological_order():
        if not isinstance(node, SumNode):
            continue
        parent_value = values[node.node_id]
        for child, weight in zip(node.children, node.weights):
            if parent_value > 0:
                share = weight * values[child.node_id] / parent_value
            else:
                share = 0.0
            out[(node.node_id, child.node_id)] = share * flows[node.node_id]
    return out


def dataset_edge_flows(
    circuit: Circuit, dataset: Iterable[Evidence]
) -> Tuple[Dict[EdgeKey, float], int]:
    """Cumulative edge flows F_{n,c}(D) = Σ_x F_{n,c}(x) over a dataset.

    Returns the flow map and the number of inputs accumulated.
    """
    totals: Dict[EdgeKey, float] = {}
    count = 0
    for evidence in dataset:
        count += 1
        for key, value in edge_flows(circuit, evidence).items():
            totals[key] = totals.get(key, 0.0) + value
    return totals, count


def flow_pruning_bound(cumulative_flow: float, dataset_size: int) -> float:
    """Paper's bound: Δ log L ≤ F_{n,c}(D) / |D| for removing one edge."""
    if dataset_size <= 0:
        raise ValueError("dataset_size must be positive")
    return cumulative_flow / dataset_size
