"""Offline trace CLI: ``python -m repro.trace <command> <trace-file>``.

Commands::

    summary  TRACE            footer metadata (events, bytes/event, counts)
    validate TRACE            full-decode integrity check vs the footer
    phases   TRACE            per-kind / per-phase cycle breakdown
    heatmap  TRACE            SRAM bank + PE traffic table
    hist     TRACE [--kind CONFLICT] [--buckets 20]
                              event-cycle histogram (ASCII)
    dump     TRACE [--kinds DECIDE,CONFLICT] [--start C] [--end C]
                   [--limit N]  print matching records
    diff     A B              align two traces of the same kernel;
                              per-kind count deltas, per-phase cycle
                              deltas and the first diverging event;
                              exit 1 when they differ (CI gate)
    record   OUT [--kernel ksat|pigeonhole|circuit|hmm] [--size N]
                              run a demo kernel with tracing on, write
                              OUT, and cross-validate it against the
                              ExecutionReport it came from

Every command streams; none materializes the event list.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import EXIT_FAILURE, EXIT_OK, EXIT_USAGE, add_version
from repro.trace.analyze import (
    bank_heatmap,
    cross_validate,
    cycle_histogram,
    diff_traces,
    phase_breakdown,
)
from repro.trace.format import EventKind, TraceFormatError
from repro.trace.reader import TraceReader


def _print_summary(args) -> int:
    summary = TraceReader(args.trace).summary()
    print(f"trace:        {args.trace}")
    print(f"events:       {summary.events}")
    print(f"bytes:        {summary.bytes}")
    print(f"bytes/event:  {summary.bytes_per_event:.2f}")
    print(f"last cycle:   {summary.last_cycle}")
    print("counts:")
    for name, count in sorted(summary.counts.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<14} {count}")
    return EXIT_OK


def _print_validate(args) -> int:
    try:
        summary = TraceReader(args.trace).validate()
    except TraceFormatError as error:
        print(f"INVALID: {error}")
        return EXIT_FAILURE
    print(f"OK: {summary.events} events decode and match the footer counts")
    return EXIT_OK


def _print_phases(args) -> int:
    breakdown = phase_breakdown(args.trace)
    print(f"total cycles: {breakdown.total_cycles}  ({breakdown.events} events)")
    print(f"{'event kind':<16}{'cycles':>12}{'share':>9}")
    for name, cycles in sorted(breakdown.by_kind.items(), key=lambda kv: -kv[1]):
        print(f"{name:<16}{cycles:>12}{breakdown.fraction(name):>8.1%}")
    if breakdown.by_phase:
        print("by phase:")
        for name, cycles in sorted(breakdown.by_phase.items(), key=lambda kv: -kv[1]):
            print(f"  {name:<16}{cycles:>12}")
    return EXIT_OK


def _print_heatmap(args) -> int:
    heat = bank_heatmap(args.trace)
    if heat.words_by_bank:
        peak = max(heat.words_by_bank.values())
        print(f"{'bank':>6}{'words':>12}{'ops':>8}  heat")
        for bank in sorted(heat.words_by_bank):
            words = heat.words_by_bank[bank]
            ops = heat.ops_by_bank.get(bank, 0)
            bar = "#" * max(1, round(40 * words / peak)) if peak else ""
            print(f"{bank:>6}{words:>12}{ops:>8}  {bar}")
        print(f"imbalance (max/mean): {heat.imbalance():.2f}")
    elif heat.ops_by_bank:
        print(f"{'bank':>6}{'memory ops':>12}")
        for bank in sorted(heat.ops_by_bank):
            print(f"{bank:>6}{heat.ops_by_bank[bank]:>12}")
    else:
        print("no bank traffic recorded in this trace")
    if heat.compute_by_pe:
        print(f"{'PE':>6}{'computes':>12}")
        for pe in sorted(heat.compute_by_pe):
            print(f"{pe:>6}{heat.compute_by_pe[pe]:>12}")
    return EXIT_OK


def _print_hist(args) -> int:
    hist = cycle_histogram(args.trace, kind=args.kind.upper(), buckets=args.buckets)
    print(
        f"{hist.total} {hist.kind} events over {hist.last_cycle} cycles "
        f"({hist.bucket_cycles} cycles/bucket)"
    )
    peak = max(hist.counts) if hist.counts else 0
    for index, count in enumerate(hist.counts):
        bar = "#" * max(0, round(40 * count / peak)) if peak else ""
        lo = index * hist.bucket_cycles
        print(f"{lo:>10} {count:>8}  {bar}")
    return EXIT_OK


def _print_dump(args) -> int:
    kinds = None
    if args.kinds:
        kinds = [name.strip().upper() for name in args.kinds.split(",") if name.strip()]
    reader = TraceReader(args.trace)
    printed = 0
    for record in reader.events(kinds=kinds, start_cycle=args.start, end_cycle=args.end):
        print(
            f"{record.cycle:>12}  {record.kind.name:<14} "
            f"value={record.value} extra={record.extra}"
        )
        printed += 1
        if args.limit is not None and printed >= args.limit:
            print(f"... stopped after {args.limit} records")
            break
    if printed == 0:
        print("no records matched")
    return EXIT_OK


def _print_diff(args) -> int:
    result = diff_traces(args.a, args.b)
    if result.identical:
        print(
            f"OK: traces match ({result.events[0]} events, "
            f"{result.cycles[0]} cycles)"
        )
        return EXIT_OK
    for line in result.describe():
        print(line)
    print("DIFFERS: the traces record different executions")
    return EXIT_FAILURE


def _record_demo(args) -> int:
    # Imported here: the CLI's read-side commands must not drag the
    # whole accelerator stack in just to summarize a file.
    from repro.api.session import ReasonSession

    kernel_name = args.kernel
    size = args.size
    if kernel_name == "ksat":
        from repro.logic.generators import random_ksat

        kernel = random_ksat(size or 60, 4 * (size or 60), seed=7)
    elif kernel_name == "pigeonhole":
        from repro.logic.generators import pigeonhole

        kernel = pigeonhole(size or 4)
    elif kernel_name == "circuit":
        from repro.pc.learn import random_circuit

        kernel = random_circuit(size or 8, depth=3, sum_children=3, seed=3)
    elif kernel_name == "hmm":
        from repro.hmm.model import HMM

        kernel = HMM.random(size or 8, 6, seed=1)
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(f"unknown demo kernel {kernel_name!r}")

    session = ReasonSession(cache=False)
    report = session.run(kernel, trace=args.out)
    info = report.extras["trace"]
    print(f"wrote {args.out}: {info['events']} events, {info['bytes']} bytes "
          f"({info['bytes_per_event']:.2f} B/event)")
    validation = cross_validate(args.out, report)
    for check in validation.checks:
        flag = "ok" if check.ok else "MISMATCH"
        print(f"  {check.name:<13} trace={check.trace_value:<12} "
              f"report={check.report_value:<12} {flag}")
    if not validation.ok:
        print("FAILED: trace does not reproduce the execution report")
        return EXIT_FAILURE
    print("cross-validation: trace reproduces the execution report exactly")
    return EXIT_OK


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Offline analysis over REASON binary event traces.",
    )
    add_version(parser, "python -m repro.trace")
    commands = parser.add_subparsers(dest="command", required=True)

    for name, handler, doc in (
        ("summary", _print_summary, "footer metadata without decoding records"),
        ("validate", _print_validate, "full-decode integrity check"),
        ("phases", _print_phases, "per-kind cycle breakdown"),
        ("heatmap", _print_heatmap, "SRAM bank / PE traffic"),
    ):
        sub = commands.add_parser(name, help=doc)
        sub.add_argument("trace", help="trace file to analyze")
        sub.set_defaults(handler=handler)

    hist = commands.add_parser("hist", help="event-cycle histogram")
    hist.add_argument("trace")
    hist.add_argument(
        "--kind",
        default="CONFLICT",
        choices=sorted(k.name.lower() for k in EventKind if k is not EventKind.EOS),
        type=str.lower,
    )
    hist.add_argument("--buckets", type=int, default=20)
    hist.set_defaults(handler=_print_hist)

    dump = commands.add_parser("dump", help="print matching records")
    dump.add_argument("trace")
    dump.add_argument("--kinds", help="comma-separated EventKind names")
    dump.add_argument("--start", type=int, default=None, help="window start cycle")
    dump.add_argument("--end", type=int, default=None, help="window end cycle")
    dump.add_argument("--limit", type=int, default=50)
    dump.set_defaults(handler=_print_dump)

    diff = commands.add_parser(
        "diff", help="align two traces; exit 1 when they differ"
    )
    diff.add_argument("a", help="baseline trace")
    diff.add_argument("b", help="candidate trace")
    diff.set_defaults(handler=_print_diff)

    record = commands.add_parser(
        "record", help="trace a demo kernel and cross-validate the file"
    )
    record.add_argument("out", help="trace file to write")
    record.add_argument(
        "--kernel",
        default="ksat",
        choices=("ksat", "pigeonhole", "circuit", "hmm"),
    )
    record.add_argument("--size", type=int, default=None)
    record.set_defaults(handler=_record_demo)

    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except TraceFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
