"""Binary event-trace format: compact, versioned, self-describing.

The replay engine models every memory and algorithm event but used to
aggregate them into counters and throw the stream away.  This format
keeps the stream, at a size where tracing whole benchmark suites is
routine.  Design constraints (inlined here so the format is fully
self-contained — there is no external spec document):

* **~2-4 bytes per event at scale.**  One code byte carries the event
  kind (low 5 bits) and, for the common case, the cycle delta since
  the previous event (high 3 bits encode deltas 0-6 inline; the value
  7 escapes to an explicit varint).  Payload operands are LEB128
  varints — unsigned for banks/counts/levels, zigzag for literals —
  so a typical PROPAGATE(literal) record is 2-3 bytes and a BANK_READ
  is 3.  A mixed stream must average <= 6 bytes/event (the CI gate in
  ``benchmarks/bench_trace.py`` enforces this).
* **Delta-encoded cycles.**  Event cycles are emitted as signed deltas
  against the previous record, so monotone streams cost 0-1 bytes per
  timestamp regardless of absolute cycle counts (billions of cycles
  encode as cheaply as hundreds).
* **Stream framing.**  A 4-byte magic + 1-byte schema version header
  rejects foreign files and stale readers up front; an end-of-stream
  footer carries per-kind event counts, the total event count and the
  final cycle, so a reader can (a) detect truncation without decoding
  and (b) cross-check a full decode against the writer's own counts
  (:meth:`~repro.trace.reader.TraceReader.validate`).  The footer ends
  with its own byte length and a closing magic, so summaries read the
  last few dozen bytes instead of the whole file.

Wire layout::

    stream  := header record* footer
    header  := MAGIC(4) version(1)
    record  := code [zigzag-varint cycle-delta if escaped] payload
    code    := kind(low 5 bits) | delta-tag(high 3 bits; 7 = escape)
    payload := per-kind varints (see EVENT_SCHEMA)
    footer  := EOS-code varint(num-kinds) (varint kind, varint count)*
               varint(total-events) zigzag-varint(last-cycle)
               u32le(footer-length) END_MAGIC(4)

The schema (which kinds exist and how many payload fields each
carries) is part of the version: readers refuse versions they do not
know rather than guessing field counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

#: Leading stream magic: "Reason TRaCe".
MAGIC = b"RTRC"
#: Trailing magic closing the footer (truncation sentinel).
END_MAGIC = b"CRT1"
#: Schema version this module reads and writes.
VERSION = 1

#: Bytes a correct header occupies (magic + version byte).
HEADER_SIZE = len(MAGIC) + 1
#: Fixed-size tail after the variable footer body: u32le length + magic.
FOOTER_TAIL_SIZE = 4 + len(END_MAGIC)

#: High-3-bit delta tag value that escapes to an explicit varint delta.
DELTA_ESCAPE = 7
#: Largest cycle delta the code byte encodes inline.
MAX_INLINE_DELTA = DELTA_ESCAPE - 1
_KIND_MASK = 0x1F


class TraceFormatError(ValueError):
    """A trace stream violates the format: bad magic, unknown version,
    truncated records, or footer counts that contradict the stream."""


class EventKind(enum.IntEnum):
    """Event codes.  Values are wire format — never renumber, only
    append (and bump :data:`VERSION` when appending changes decoding).

    Kind 0 is reserved as the end-of-stream marker so a zeroed byte can
    never masquerade as a silent no-op event.
    """

    EOS = 0  # reserved: footer marker, never a record
    # ---- algorithm events (CDCL replay) ---------------------------------
    DECIDE = 1  # value = decided literal (zigzag)
    PROPAGATE = 2  # value = implied literal (zigzag)
    CONFLICT = 3  # value = FIFO entries flushed
    LEARN = 4  # value = learned clause size (cycle-neutral annotation)
    BACKJUMP = 5  # value = target decision level
    RESTART = 6
    # ---- memory events --------------------------------------------------
    WATCH_UPDATE = 7  # value = falsified watch literal (zigzag), extra = clauses
    BANK_READ = 8  # value = SRAM bank, extra = words read
    DMA_FETCH = 9  # value = words fetched from DRAM
    # ---- VLIW program events --------------------------------------------
    COMPUTE = 10  # value = executing PE index
    LOAD = 11  # value = destination register bank
    STORE = 12  # value = source register bank
    SPILL = 13  # value = victim register bank
    RELOAD = 14  # value = destination register bank
    NOP = 15
    PE_BLOCK = 16  # value = active node ops, extra = forward ops
    # ---- stream structure ----------------------------------------------
    PHASE = 17  # value = phase id (PHASE_* below)
    RUN_END = 18  # cycle = the run's total modeled cycles


#: ``PHASE`` payload values: which execution mode follows.
PHASE_SYMBOLIC = 1  # CDCL trace replay (accelerator._replay)
PHASE_PROGRAM = 2  # compiled VLIW program (run_program)
PHASE_SOLVER = 3  # raw CDCL solver trace (no hardware timing)

PHASE_NAMES: Dict[int, str] = {
    PHASE_SYMBOLIC: "symbolic-replay",
    PHASE_PROGRAM: "program",
    PHASE_SOLVER: "solver",
}

#: kind -> (payload field count, first field zigzag-signed?).  The
#: second payload field (``extra``) is always unsigned.  This table is
#: the schema: both the writer and the reader derive record layout
#: from it, so they cannot disagree within one VERSION.
EVENT_SCHEMA: Dict[int, Tuple[int, bool]] = {
    EventKind.DECIDE: (1, True),
    EventKind.PROPAGATE: (1, True),
    EventKind.CONFLICT: (1, False),
    EventKind.LEARN: (1, False),
    EventKind.BACKJUMP: (1, False),
    EventKind.RESTART: (0, False),
    EventKind.WATCH_UPDATE: (2, True),
    EventKind.BANK_READ: (2, False),
    EventKind.DMA_FETCH: (1, False),
    EventKind.COMPUTE: (1, False),
    EventKind.LOAD: (1, False),
    EventKind.STORE: (1, False),
    EventKind.SPILL: (1, False),
    EventKind.RELOAD: (1, False),
    EventKind.NOP: (0, False),
    EventKind.PE_BLOCK: (2, False),
    EventKind.PHASE: (1, False),
    EventKind.RUN_END: (0, False),
}

#: Kinds whose count equals the ExecutionReport's ``instructions``.
INSTRUCTION_KINDS = frozenset(
    {
        EventKind.COMPUTE,
        EventKind.LOAD,
        EventKind.STORE,
        EventKind.SPILL,
        EventKind.RELOAD,
        EventKind.NOP,
    }
)
#: Kinds the accelerator counts as stalls in ``run_program`` (NOPs are
#: scheduler bubbles; memory ops overlap with issue and do not stall).
STALL_KINDS = frozenset({EventKind.NOP})


@dataclass(slots=True, frozen=True)
class TraceRecord:
    """One decoded event.

    ``value`` and ``extra`` are the kind-specific operands documented
    on :class:`EventKind` (0 for kinds with fewer payload fields).
    """

    kind: EventKind
    cycle: int
    value: int = 0
    extra: int = 0


# --------------------------------------------------------------- varints


def zigzag_encode(value: int) -> int:
    """Map a signed int to unsigned so small magnitudes stay small."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def zigzag_decode(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def append_uvarint(buf: bytearray, value: int) -> None:
    """LEB128-append an unsigned int (7 payload bits per byte)."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def read_uvarint(data, offset: int) -> Tuple[int, int]:
    """Decode one LEB128 uvarint; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    length = len(data)
    while True:
        if offset >= length:
            raise TraceFormatError("truncated varint: stream ended mid-value")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise TraceFormatError("varint overflow: more than 9 continuation bytes")


# -------------------------------------------------------------- framing


def encode_header() -> bytes:
    return MAGIC + bytes((VERSION,))


def decode_header(data) -> int:
    """Validate the header; returns the offset of the first record."""
    if len(data) < HEADER_SIZE:
        raise TraceFormatError(
            f"not a trace: {len(data)} bytes is shorter than the header"
        )
    if bytes(data[: len(MAGIC)]) != MAGIC:
        raise TraceFormatError(
            f"not a trace: bad magic {bytes(data[:len(MAGIC)])!r} (expected {MAGIC!r})"
        )
    version = data[len(MAGIC)]
    if version != VERSION:
        raise TraceFormatError(
            f"unsupported trace schema version {version} (reader supports {VERSION})"
        )
    return HEADER_SIZE


def encode_footer(counts: Dict[int, int], total: int, last_cycle: int) -> bytes:
    """The end-of-stream frame: per-kind counts + totals + self-length."""
    body = bytearray()
    body.append(EventKind.EOS)
    present = [(kind, count) for kind, count in sorted(counts.items()) if count]
    append_uvarint(body, len(present))
    for kind, count in present:
        append_uvarint(body, kind)
        append_uvarint(body, count)
    append_uvarint(body, total)
    append_uvarint(body, zigzag_encode(last_cycle))
    body.extend(len(body).to_bytes(4, "little"))
    body.extend(END_MAGIC)
    return bytes(body)


def decode_footer_body(data, offset: int) -> Tuple[Dict[int, int], int, int, int]:
    """Decode the footer from its EOS byte onward.

    Returns ``(counts, total_events, last_cycle, next_offset)`` where
    ``next_offset`` points at the u32 length field.
    """
    if data[offset] != EventKind.EOS:
        raise TraceFormatError("footer does not start with the EOS marker")
    offset += 1
    num_kinds, offset = read_uvarint(data, offset)
    counts: Dict[int, int] = {}
    for _ in range(num_kinds):
        kind, offset = read_uvarint(data, offset)
        count, offset = read_uvarint(data, offset)
        counts[kind] = count
    total, offset = read_uvarint(data, offset)
    raw_cycle, offset = read_uvarint(data, offset)
    return counts, total, zigzag_decode(raw_cycle), offset
