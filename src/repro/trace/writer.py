"""`TraceWriter`: streaming binary encoder for execution event traces.

The writer is the single producer-side entry point: the accelerator's
replay/program loops call :meth:`TraceWriter.emit` per event, and the
writer varint/delta-encodes records into an internal buffer that
flushes to the sink in large chunks (so tracing costs appends, not
syscalls, in the hot loop).  ``close()`` seals the stream with the
counting footer readers validate against.

Sinks: ``None`` buffers the whole stream in memory (``getvalue()``),
a ``str``/``Path`` writes the file, and any object with ``write()``
is used as-is (only owned files are closed on ``close()``).
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.trace.format import (
    DELTA_ESCAPE,
    EVENT_SCHEMA,
    MAX_INLINE_DELTA,
    PHASE_SOLVER,
    EventKind,
    encode_footer,
    encode_header,
    zigzag_encode,
)

#: Flush the internal buffer to the sink once it crosses this size.
_FLUSH_BYTES = 1 << 16


@dataclass(frozen=True)
class TraceSummary:
    """What a sealed trace contains, as the writer counted it."""

    events: int
    bytes: int
    last_cycle: int
    counts: Dict[str, int]  # EventKind name -> count (non-zero only)
    path: Optional[str] = None

    @property
    def bytes_per_event(self) -> float:
        return self.bytes / self.events if self.events else 0.0


class TraceWriter:
    """Encode an event stream; one instance per trace file.

    The emit path is deliberately branch-light: one code-byte append
    for the common small-delta case, inline LEB128 loops for payload
    operands, and a size check that flushes at most once per ~64 KiB.
    """

    def __init__(self, sink: Union[None, str, os.PathLike, io.IOBase] = None):
        if sink is None or isinstance(sink, (str, os.PathLike)):
            self.path: Optional[str] = None if sink is None else str(sink)
            if sink is None:
                self._sink = None
            else:
                Path(sink).parent.mkdir(parents=True, exist_ok=True)
                self._sink = open(sink, "wb")
            self._owns_sink = sink is not None
        else:
            self.path = getattr(sink, "name", None)
            self._sink = sink
            self._owns_sink = False
        self._buf = bytearray(encode_header())
        self._flushed = 0
        self._last_cycle = 0
        self._counts = [0] * 32
        self._events = 0
        self._closed = False
        self._summary: Optional[TraceSummary] = None

    # ------------------------------------------------------------ emission

    def emit(
        self,
        kind: int,
        cycle: Optional[int] = None,
        value: int = 0,
        extra: int = 0,
    ) -> None:
        """Append one event.

        ``cycle=None`` stamps the event at the previous event's cycle
        (a free 0 delta) — the convention for events that annotate the
        current timestamp rather than advance the clock.
        """
        buf = self._buf
        if cycle is None:
            delta = 0
        else:
            delta = cycle - self._last_cycle
            self._last_cycle = cycle
        if 0 <= delta <= MAX_INLINE_DELTA:
            buf.append(kind | (delta << 5))
        else:
            buf.append(kind | (DELTA_ESCAPE << 5))
            encoded = zigzag_encode(delta)
            while encoded > 0x7F:
                buf.append((encoded & 0x7F) | 0x80)
                encoded >>= 7
            buf.append(encoded)
        nfields, signed = EVENT_SCHEMA[kind]
        if nfields:
            operand = zigzag_encode(value) if signed else value
            if operand < 0:
                raise ValueError(
                    f"{EventKind(kind).name} value operand must be >= 0, got {value}"
                )
            while operand > 0x7F:
                buf.append((operand & 0x7F) | 0x80)
                operand >>= 7
            buf.append(operand)
            if nfields == 2:
                operand = extra
                if operand < 0:
                    raise ValueError(
                        f"{EventKind(kind).name} extra operand must be >= 0, got {extra}"
                    )
                while operand > 0x7F:
                    buf.append((operand & 0x7F) | 0x80)
                    operand >>= 7
                buf.append(operand)
        self._counts[kind] += 1
        self._events += 1
        if len(buf) >= _FLUSH_BYTES and self._sink is not None:
            self._flush()

    def emit_solver_trace(self, solver) -> int:
        """Encode a recorded :class:`~repro.logic.cdcl.CDCLSolver` trace
        directly (no hardware timing: the "cycle" axis is the event
        index).  Returns the number of events written.

        This is the pure-software wiring of the CDCL trace: a solve can
        be archived and analyzed without ever replaying it on the
        accelerator model.
        """
        emit = self.emit
        emit(EventKind.PHASE, None, PHASE_SOLVER)
        index = self._last_cycle
        written = 1
        for event in solver.trace:
            index += 1
            kind = event.kind
            if kind == "imply":
                emit(EventKind.PROPAGATE, index, event.literal)
            elif kind == "decide":
                emit(EventKind.DECIDE, index, event.literal)
            elif kind == "conflict":
                emit(EventKind.CONFLICT, index, 0)
            elif kind == "learn":
                emit(EventKind.LEARN, index, event.clause_size)
            elif kind == "backjump":
                emit(EventKind.BACKJUMP, index, event.level)
            elif kind == "restart":
                emit(EventKind.RESTART, index)
            else:  # unknown solver event kinds are skipped, not fatal
                index -= 1
                continue
            written += 1
        emit(EventKind.RUN_END, index)
        return written + 1

    # ----------------------------------------------------------- counters

    @property
    def events(self) -> int:
        """Events emitted so far."""
        return self._events

    @property
    def bytes_written(self) -> int:
        """Stream bytes so far (header + records; footer only after close)."""
        return self._flushed + len(self._buf)

    @property
    def last_cycle(self) -> int:
        return self._last_cycle

    def counts(self) -> Dict[str, int]:
        """Per-kind event counts so far (non-zero, by kind name)."""
        return {
            EventKind(kind).name: count
            for kind, count in enumerate(self._counts)
            if count
        }

    # ---------------------------------------------------------- lifecycle

    def _flush(self) -> None:
        self._flushed += len(self._buf)
        self._sink.write(bytes(self._buf))
        self._buf = bytearray()

    def close(self) -> TraceSummary:
        """Seal the stream: write the counting footer, flush, and (for
        owned file sinks) close the file.  Idempotent; returns the
        :class:`TraceSummary` for the whole trace."""
        if self._closed:
            return self._summary
        self._closed = True
        counts = {kind: n for kind, n in enumerate(self._counts) if n}
        self._buf.extend(encode_footer(counts, self._events, self._last_cycle))
        total_bytes = self._flushed + len(self._buf)
        if self._sink is not None:
            self._flush()
            if self._owns_sink:
                self._sink.close()
        self._summary = TraceSummary(
            events=self._events,
            bytes=total_bytes,
            last_cycle=self._last_cycle,
            counts=self.counts(),
            path=self.path,
        )
        return self._summary

    def getvalue(self) -> bytes:
        """The encoded stream of an in-memory (``sink=None``) writer."""
        if self._sink is not None:
            raise ValueError(
                "getvalue() is only available on in-memory writers; "
                f"this one streams to {self.path or self._sink!r}"
            )
        return bytes(self._buf)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
