"""`TraceReader`: streaming decoder + windowed query API over a trace.

The reader never materializes the event stream: iteration decodes one
record at a time from a chunked read buffer, so a multi-gigabyte trace
costs constant memory to scan.  Three access levels:

* :meth:`TraceReader.__iter__` / :meth:`events` — forward iteration,
  optionally filtered by event kind, cycle window and bank/PE operand;
* :meth:`summary` — footer-only metadata (event counts, final cycle)
  read from the last few dozen bytes without decoding any records;
* :meth:`validate` — full decode cross-checked against the footer's
  per-kind counts (the integrity gate for archived traces).

Truncated files, foreign magic and unknown schema versions raise
:class:`~repro.trace.format.TraceFormatError` — a trace that decodes
silently is a trace whose counts the footer has vouched for.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Iterable, Iterator, Optional, Union

from repro.trace.format import (
    DELTA_ESCAPE,
    EVENT_SCHEMA,
    FOOTER_TAIL_SIZE,
    END_MAGIC,
    EventKind,
    TraceFormatError,
    TraceRecord,
    decode_footer_body,
    decode_header,
    read_uvarint,
    zigzag_decode,
)
from repro.trace.writer import TraceSummary

#: Chunk size for file-backed streaming decode.
_CHUNK_BYTES = 1 << 16
#: A record is at most code + 3 maximal varints (< 32 bytes); keeping
#: this many bytes buffered guarantees a record never splits a refill.
_MIN_BUFFERED = 64

#: Kinds whose ``value`` operand is a bank/PE index, for ``events``'
#: unit filter.
_UNIT_FILTERABLE = frozenset(
    {
        EventKind.BANK_READ,
        EventKind.COMPUTE,
        EventKind.LOAD,
        EventKind.STORE,
        EventKind.SPILL,
        EventKind.RELOAD,
    }
)


class TraceReader:
    """Decode one binary trace from a path, bytes, or binary file.

    A reader is restartable: every call to :meth:`__iter__` /
    :meth:`events` / :meth:`validate` re-opens the stream from the
    first record, so one reader instance can serve several queries.
    Byte and seekable-file sources rewind; non-seekable streams support
    a single pass.
    """

    def __init__(self, source: Union[str, os.PathLike, bytes, bytearray, io.IOBase]):
        self._path: Optional[str] = None
        self._data: Optional[bytes] = None
        self._stream: Optional[io.IOBase] = None
        if isinstance(source, (bytes, bytearray, memoryview)):
            self._data = bytes(source)
        elif isinstance(source, (str, os.PathLike)):
            self._path = str(source)
        else:
            self._stream = source
        # Validate the header eagerly: a reader over a foreign or
        # stale-version file should fail at construction, not mid-scan.
        header = self._read_prefix()
        decode_header(header)

    # ------------------------------------------------------------- source

    def _read_prefix(self) -> bytes:
        if self._data is not None:
            return self._data[:8]
        if self._path is not None:
            with open(self._path, "rb") as handle:
                return handle.read(8)
        handle = self._stream
        if handle.seekable():
            position = handle.tell()
            prefix = handle.read(8)
            handle.seek(position)
            return prefix
        # Non-seekable stream: buffer everything once up front.
        self._data = handle.read()
        self._stream = None
        return self._data[:8]

    def _chunks(self) -> Iterator[bytes]:
        """Yield the raw stream as chunks, from the beginning."""
        if self._data is not None:
            yield self._data
            return
        if self._path is not None:
            with open(self._path, "rb") as handle:
                while True:
                    chunk = handle.read(_CHUNK_BYTES)
                    if not chunk:
                        return
                    yield chunk
            return
        handle = self._stream
        if not handle.seekable():
            raise TraceFormatError(
                "non-seekable trace stream was already consumed; "
                "wrap it in bytes for repeated queries"
            )
        handle.seek(0)
        while True:
            chunk = handle.read(_CHUNK_BYTES)
            if not chunk:
                return
            yield chunk

    # ------------------------------------------------------------ decode

    def _records(self) -> Iterator[TraceRecord]:
        """Decode records until the footer; validates stream shape but
        not footer counts (see :meth:`validate`)."""
        chunks = self._chunks()
        buf = b""
        for chunk in chunks:
            buf += chunk
            if len(buf) >= _MIN_BUFFERED:
                break
        offset = decode_header(buf)
        cycle = 0
        schema = EVENT_SCHEMA
        kind_of = EventKind
        while True:
            # Keep at least one whole record + footer head buffered.
            if len(buf) - offset < _MIN_BUFFERED:
                buf = buf[offset:]
                offset = 0
                for chunk in chunks:
                    buf += chunk
                    if len(buf) >= _MIN_BUFFERED:
                        break
            if offset >= len(buf):
                raise TraceFormatError(
                    "truncated trace: stream ended without an end-of-stream footer"
                )
            code = buf[offset]
            kind = code & 0x1F
            if kind == EventKind.EOS:
                # Footer reached: pull the remainder in and stop.
                tail = buf[offset:] + b"".join(chunks)
                self._check_footer_shape(tail)
                return
            offset += 1
            delta = code >> 5
            if delta == DELTA_ESCAPE:
                raw, offset = read_uvarint(buf, offset)
                delta = zigzag_decode(raw)
            cycle += delta
            try:
                nfields, signed = schema[kind]
            except KeyError:
                raise TraceFormatError(
                    f"unknown event kind {kind} (corrupt stream or future schema)"
                ) from None
            value = 0
            extra = 0
            if nfields:
                value, offset = read_uvarint(buf, offset)
                if signed:
                    value = zigzag_decode(value)
                if nfields == 2:
                    extra, offset = read_uvarint(buf, offset)
            yield TraceRecord(kind_of(kind), cycle, value, extra)

    @staticmethod
    def _check_footer_shape(tail: bytes) -> None:
        """The stream after the last record must be one whole footer."""
        counts, total, last_cycle, offset = decode_footer_body(tail, 0)
        if len(tail) - offset != FOOTER_TAIL_SIZE:
            raise TraceFormatError(
                "malformed footer: trailing bytes after the event counts"
            )
        if tail[-len(END_MAGIC):] != END_MAGIC:
            raise TraceFormatError(
                "truncated trace: footer does not end with the closing magic"
            )

    def __iter__(self) -> Iterator[TraceRecord]:
        return self._records()

    def events(
        self,
        kinds: Optional[Iterable[Union[EventKind, str]]] = None,
        start_cycle: Optional[int] = None,
        end_cycle: Optional[int] = None,
        unit: Optional[int] = None,
    ) -> Iterator[TraceRecord]:
        """Stream records matching every given filter.

        ``kinds`` accepts :class:`EventKind` members or their names;
        ``start_cycle``/``end_cycle`` bound an inclusive cycle window;
        ``unit`` matches the bank/PE operand of memory and compute
        events (other kinds never match a unit filter).  Filters
        compose; the stream is never materialized.
        """
        wanted = None
        if kinds is not None:
            wanted = frozenset(
                EventKind[k] if isinstance(k, str) else EventKind(k) for k in kinds
            )
        for record in self._records():
            if wanted is not None and record.kind not in wanted:
                continue
            if start_cycle is not None and record.cycle < start_cycle:
                continue
            if end_cycle is not None and record.cycle > end_cycle:
                continue
            if unit is not None and (
                record.kind not in _UNIT_FILTERABLE or record.value != unit
            ):
                continue
            yield record

    def window(self, start_cycle: int, end_cycle: int) -> Iterator[TraceRecord]:
        """Every record whose cycle falls in ``[start_cycle, end_cycle]``."""
        return self.events(start_cycle=start_cycle, end_cycle=end_cycle)

    # ----------------------------------------------------------- metadata

    def summary(self) -> TraceSummary:
        """Footer metadata without decoding records.

        For paths and seekable streams this reads only the footer
        region (self-locating via its trailing length field), so
        summarizing a huge archived trace is O(footer).
        """
        tail = self._read_tail()
        if len(tail) < FOOTER_TAIL_SIZE:
            raise TraceFormatError("truncated trace: no footer tail")
        if tail[-len(END_MAGIC):] != END_MAGIC:
            raise TraceFormatError(
                "truncated trace: footer does not end with the closing magic"
            )
        body_len = int.from_bytes(
            tail[-FOOTER_TAIL_SIZE : -FOOTER_TAIL_SIZE + 4], "little"
        )
        if body_len + FOOTER_TAIL_SIZE > len(tail):
            raise TraceFormatError("malformed footer: length field out of range")
        body = tail[len(tail) - FOOTER_TAIL_SIZE - body_len : len(tail) - FOOTER_TAIL_SIZE]
        counts, total, last_cycle, _ = decode_footer_body(body, 0)
        return TraceSummary(
            events=total,
            bytes=self._stream_size(),
            last_cycle=last_cycle,
            counts={EventKind(k).name: n for k, n in counts.items()},
            path=self._path,
        )

    def _read_tail(self) -> bytes:
        window = 4096 + FOOTER_TAIL_SIZE
        if self._data is not None:
            return self._data[-window:]
        if self._path is not None:
            with open(self._path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(max(0, size - window))
                return handle.read()
        handle = self._stream
        if not handle.seekable():
            raise TraceFormatError("cannot summarize a non-seekable stream")
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(max(0, size - window))
        tail = handle.read()
        handle.seek(0)
        return tail

    def _stream_size(self) -> int:
        if self._data is not None:
            return len(self._data)
        if self._path is not None:
            return os.path.getsize(self._path)
        handle = self._stream
        position = handle.tell()
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(position)
        return size

    def validate(self) -> TraceSummary:
        """Full-decode integrity check against the footer.

        Decodes every record, tallies per-kind counts, and compares
        them (plus the total and final cycle) with what the writer
        recorded in the footer.  Returns the verified summary; raises
        :class:`TraceFormatError` on any disagreement.
        """
        declared = self.summary()
        counts: Dict[str, int] = {}
        total = 0
        last_cycle = 0
        for record in self._records():
            counts[record.kind.name] = counts.get(record.kind.name, 0) + 1
            total += 1
            last_cycle = record.cycle
        if total != declared.events:
            raise TraceFormatError(
                f"footer declares {declared.events} events, stream decodes {total}"
            )
        if counts != declared.counts:
            raise TraceFormatError(
                f"footer event counts {declared.counts} disagree with "
                f"decoded counts {counts}"
            )
        if total and last_cycle != declared.last_cycle:
            raise TraceFormatError(
                f"footer last cycle {declared.last_cycle} disagrees with "
                f"decoded last cycle {last_cycle}"
            )
        return declared


def read_trace(
    source: Union[str, os.PathLike, bytes, bytearray, io.IOBase],
) -> "list[TraceRecord]":
    """Decode a whole (small) trace into a list — convenience for tests
    and interactive use; large traces should stream via TraceReader."""
    return list(TraceReader(source))
