"""Offline trace analysis: the questions a counter dump cannot answer.

Every function takes a :class:`~repro.trace.reader.TraceReader` (or
anything accepted by its constructor) and streams — no tool here
materializes the event list, so they run unchanged on traces with
billions of events.

* :func:`phase_breakdown` — where the cycles went, attributed to the
  event kind that advanced the modeled clock (the per-phase cycle
  breakdown the replay's aggregate counters destroy);
* :func:`bank_heatmap` — per-SRAM-bank words read and per-bank memory
  instruction counts (cache/bank pressure at a glance);
* :func:`cycle_histogram` — when events of a kind happen across the
  run (conflict clustering, learn bursts, spill storms);
* :func:`cross_validate` — the integrity bridge back to the execution
  layer: summed trace events must reproduce an
  :class:`~repro.api.types.ExecutionReport`'s counters *exactly*;
* :func:`diff_traces` — regression hunting: align two traces of the
  same kernel event-by-event and report per-kind count deltas,
  per-phase cycle deltas and the first diverging event.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.trace.format import (
    INSTRUCTION_KINDS,
    PHASE_NAMES,
    STALL_KINDS,
    EventKind,
)
from repro.trace.reader import TraceReader


def _reader(source) -> TraceReader:
    return source if isinstance(source, TraceReader) else TraceReader(source)


# ------------------------------------------------------------ breakdowns


@dataclass
class PhaseBreakdown:
    """Cycle attribution over one trace.

    ``by_kind`` maps event-kind name -> cycles that elapsed while that
    kind of event advanced the clock; ``by_phase`` splits the same
    cycles by the surrounding PHASE marker (symbolic-replay vs
    program).  Attribution is exact: deltas sum to ``total_cycles``.
    """

    total_cycles: int = 0
    events: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    by_phase: Dict[str, int] = field(default_factory=dict)

    def fraction(self, kind: str) -> float:
        return self.by_kind.get(kind, 0) / self.total_cycles if self.total_cycles else 0.0


def phase_breakdown(source) -> PhaseBreakdown:
    """Attribute every elapsed cycle to the event that spent it.

    A record at cycle ``c`` following a record at cycle ``p < c``
    spent ``c - p`` cycles; those cycles belong to its kind (a
    PROPAGATE that waited out a watch-list walk owns that walk's
    latency).  RUN_END's delta is the run's trailing bookkeeping.
    """
    breakdown = PhaseBreakdown()
    last_cycle = 0
    phase = "untagged"
    by_kind = breakdown.by_kind
    by_phase = breakdown.by_phase
    for record in _reader(source):
        breakdown.events += 1
        if record.kind is EventKind.PHASE:
            phase = PHASE_NAMES.get(record.value, f"phase-{record.value}")
            last_cycle = record.cycle
            continue
        delta = record.cycle - last_cycle
        last_cycle = record.cycle
        if delta > 0:
            name = record.kind.name
            by_kind[name] = by_kind.get(name, 0) + delta
            by_phase[phase] = by_phase.get(phase, 0) + delta
            breakdown.total_cycles += delta
    return breakdown


@dataclass
class BankHeatmap:
    """Per-unit traffic: SRAM words per bank, memory ops per bank,
    compute issues per PE."""

    words_by_bank: Dict[int, int] = field(default_factory=dict)
    ops_by_bank: Dict[int, int] = field(default_factory=dict)
    compute_by_pe: Dict[int, int] = field(default_factory=dict)

    @property
    def hottest_bank(self) -> Optional[int]:
        return max(self.words_by_bank, key=self.words_by_bank.get) if self.words_by_bank else None

    def imbalance(self) -> float:
        """Max/mean words ratio across banks (1.0 = perfectly even)."""
        if not self.words_by_bank:
            return 1.0
        values = list(self.words_by_bank.values())
        mean = sum(values) / len(values)
        return max(values) / mean if mean else 1.0


_MEMORY_OP_KINDS = frozenset(
    {EventKind.LOAD, EventKind.STORE, EventKind.SPILL, EventKind.RELOAD}
)


def bank_heatmap(source) -> BankHeatmap:
    """Aggregate bank/PE traffic from BANK_READ, memory-op and COMPUTE
    events (the raw material of a cache/bank heatmap plot)."""
    heat = BankHeatmap()
    words = heat.words_by_bank
    ops = heat.ops_by_bank
    compute = heat.compute_by_pe
    for record in _reader(source):
        kind = record.kind
        if kind is EventKind.BANK_READ:
            words[record.value] = words.get(record.value, 0) + record.extra
        elif kind in _MEMORY_OP_KINDS:
            ops[record.value] = ops.get(record.value, 0) + 1
        elif kind is EventKind.COMPUTE:
            compute[record.value] = compute.get(record.value, 0) + 1
    return heat


@dataclass
class CycleHistogram:
    """Event occurrences bucketed over the run's cycle axis."""

    kind: str
    bucket_cycles: int
    counts: List[int]
    total: int
    last_cycle: int

    def peak_bucket(self) -> Tuple[int, int]:
        """(bucket index, count) of the densest bucket."""
        if not self.counts:
            return (0, 0)
        index = max(range(len(self.counts)), key=self.counts.__getitem__)
        return index, self.counts[index]


def cycle_histogram(
    source,
    kind: Union[EventKind, str] = EventKind.CONFLICT,
    buckets: int = 20,
) -> CycleHistogram:
    """Histogram of when ``kind`` events land across the trace's cycle
    range — conflict/learn clustering made visible.  Uses the footer
    for the cycle range, so the stream is read exactly once."""
    reader = _reader(source)
    wanted = EventKind[kind] if isinstance(kind, str) else EventKind(kind)
    last_cycle = max(reader.summary().last_cycle, 1)
    buckets = max(int(buckets), 1)
    bucket_cycles = max((last_cycle + buckets - 1) // buckets, 1)
    counts = [0] * buckets
    total = 0
    for record in reader.events(kinds=(wanted,)):
        index = min(record.cycle // bucket_cycles, buckets - 1)
        counts[index] += 1
        total += 1
    return CycleHistogram(
        kind=wanted.name,
        bucket_cycles=bucket_cycles,
        counts=counts,
        total=total,
        last_cycle=last_cycle,
    )


# ------------------------------------------------------- cross-validation


@dataclass
class CheckResult:
    name: str
    trace_value: int
    report_value: int

    @property
    def ok(self) -> bool:
        return self.trace_value == self.report_value


@dataclass
class ValidationResult:
    """Outcome of :func:`cross_validate`: every counter the trace can
    reconstruct, next to the report's value."""

    checks: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def mismatches(self) -> List[CheckResult]:
        return [check for check in self.checks if not check.ok]

    def raise_on_mismatch(self) -> "ValidationResult":
        if not self.ok:
            detail = ", ".join(
                f"{c.name}: trace={c.trace_value} report={c.report_value}"
                for c in self.mismatches
            )
            raise AssertionError(f"trace does not reproduce the report: {detail}")
        return self


def cross_validate(source, report) -> ValidationResult:
    """Check that summed trace events reproduce ``report``'s counters.

    ``report`` is an :class:`~repro.api.types.ExecutionReport` (duck-
    typed: ``cycles``, ``queries`` and ``extras`` are read).  For
    symbolic (CDCL replay) traces the decision/implication/conflict
    totals and the cycle count must match exactly; for program traces
    the instruction and stall totals and the cycle count must.  The
    trace records one replay; the report scales by ``queries``, so
    cycles compare as ``max(trace_cycles, 1) * queries``.
    """
    counts: Dict[EventKind, int] = {}
    run_end_cycle = 0
    for record in _reader(source):
        counts[record.kind] = counts.get(record.kind, 0) + 1
        if record.kind is EventKind.RUN_END:
            run_end_cycle = record.cycle
    result = ValidationResult()
    extras = getattr(report, "extras", {}) or {}
    queries = max(getattr(report, "queries", 1), 1)

    def check(name: str, trace_value: int, report_value) -> None:
        if report_value is not None:
            result.checks.append(CheckResult(name, trace_value, int(report_value)))

    check("decisions", counts.get(EventKind.DECIDE, 0), extras.get("decisions"))
    check("implications", counts.get(EventKind.PROPAGATE, 0), extras.get("implications"))
    check("conflicts", counts.get(EventKind.CONFLICT, 0), extras.get("conflicts"))
    instructions = sum(counts.get(kind, 0) for kind in INSTRUCTION_KINDS)
    stalls = sum(counts.get(kind, 0) for kind in STALL_KINDS)
    check("instructions", instructions, extras.get("instructions"))
    check("stalls", stalls, extras.get("stalls"))
    cycles = getattr(report, "cycles", None)
    if cycles is not None:
        check("cycles", max(run_end_cycle, 1) * queries, cycles)
    return result


# ----------------------------------------------------- regression diffing


@dataclass
class TraceDelta:
    """One aggregate that moved between two traces."""

    name: str  # event-kind name (count deltas) or phase name (cycles)
    before: int
    after: int

    @property
    def delta(self) -> int:
        return self.after - self.before


@dataclass
class TraceDivergence:
    """The first event ordinal where the two streams disagree.

    ``before`` / ``after`` are human-readable record descriptions;
    ``None`` on a side means that trace ended before the ordinal.
    """

    index: int
    before: Optional[str]
    after: Optional[str]


@dataclass
class TraceDiff:
    """Outcome of :func:`diff_traces` over traces A (before) and B
    (after).  ``identical`` means the streams matched record for
    record; everything else localizes the regression: which kinds
    changed count, which phases gained/lost cycles, and the exact
    event where the executions first took different paths.
    """

    events: Tuple[int, int]
    cycles: Tuple[int, int]
    kind_deltas: List[TraceDelta] = field(default_factory=list)
    phase_deltas: List[TraceDelta] = field(default_factory=list)
    divergence: Optional[TraceDivergence] = None

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def describe(self) -> List[str]:
        lines: List[str] = []
        if self.events[0] != self.events[1]:
            lines.append(f"events: {self.events[0]} -> {self.events[1]}")
        if self.cycles[0] != self.cycles[1]:
            lines.append(f"cycles: {self.cycles[0]} -> {self.cycles[1]}")
        for delta in self.kind_deltas:
            lines.append(
                f"count {delta.name}: {delta.before} -> {delta.after} "
                f"({delta.delta:+d})"
            )
        for delta in self.phase_deltas:
            lines.append(
                f"cycles[{delta.name}]: {delta.before} -> {delta.after} "
                f"({delta.delta:+d})"
            )
        if self.divergence is not None:
            lines.append(f"first divergence at event #{self.divergence.index}:")
            lines.append(f"  A: {self.divergence.before or '<end of trace>'}")
            lines.append(f"  B: {self.divergence.after or '<end of trace>'}")
        return lines


class _DiffSide:
    """Streaming aggregates over one trace (counts + phase cycles)."""

    __slots__ = ("events", "last_cycle", "phase", "counts", "phase_cycles")

    def __init__(self) -> None:
        self.events = 0
        self.last_cycle = 0
        self.phase = "untagged"
        self.counts: Dict[str, int] = {}
        self.phase_cycles: Dict[str, int] = {}

    def feed(self, record) -> None:
        self.events += 1
        name = record.kind.name
        self.counts[name] = self.counts.get(name, 0) + 1
        if record.kind is EventKind.PHASE:
            self.phase = PHASE_NAMES.get(record.value, f"phase-{record.value}")
            self.last_cycle = record.cycle
            return
        delta = record.cycle - self.last_cycle
        self.last_cycle = record.cycle
        if delta > 0:
            self.phase_cycles[self.phase] = (
                self.phase_cycles.get(self.phase, 0) + delta
            )


def _describe_record(record) -> str:
    return (
        f"cycle={record.cycle} {record.kind.name} "
        f"value={record.value} extra={record.extra}"
    )


def diff_traces(before, after) -> TraceDiff:
    """Align two traces event-by-event and report what changed.

    Both streams are read exactly once, in lockstep — memory stays
    O(#kinds + #phases) however long the traces are.  The modeled
    pipeline is deterministic, so two runs of the *same* kernel on the
    same code produce byte-identical event streams; any divergence is
    a behavior change, and the first diverging event pins where the
    executions split (the cheapest place to start a bisect).
    """
    from itertools import zip_longest

    side_a, side_b = _DiffSide(), _DiffSide()
    divergence: Optional[TraceDivergence] = None
    for index, (rec_a, rec_b) in enumerate(
        zip_longest(_reader(before), _reader(after))
    ):
        if rec_a is not None:
            side_a.feed(rec_a)
        if rec_b is not None:
            side_b.feed(rec_b)
        if divergence is None:
            if rec_a is None or rec_b is None or (
                (rec_a.cycle, rec_a.kind, rec_a.value, rec_a.extra)
                != (rec_b.cycle, rec_b.kind, rec_b.value, rec_b.extra)
            ):
                divergence = TraceDivergence(
                    index=index,
                    before=None if rec_a is None else _describe_record(rec_a),
                    after=None if rec_b is None else _describe_record(rec_b),
                )
    kind_deltas = [
        TraceDelta(name, side_a.counts.get(name, 0), side_b.counts.get(name, 0))
        for name in sorted(set(side_a.counts) | set(side_b.counts))
        if side_a.counts.get(name, 0) != side_b.counts.get(name, 0)
    ]
    phase_deltas = [
        TraceDelta(
            name,
            side_a.phase_cycles.get(name, 0),
            side_b.phase_cycles.get(name, 0),
        )
        for name in sorted(set(side_a.phase_cycles) | set(side_b.phase_cycles))
        if side_a.phase_cycles.get(name, 0) != side_b.phase_cycles.get(name, 0)
    ]
    return TraceDiff(
        events=(side_a.events, side_b.events),
        cycles=(side_a.last_cycle, side_b.last_cycle),
        kind_deltas=kind_deltas,
        phase_deltas=phase_deltas,
        divergence=divergence,
    )


def trace_artifact_path(
    directory: Union[str, os.PathLike], fingerprint: str
) -> "os.PathLike":
    """The canonical on-disk location for one request's trace artifact,
    addressed by the same content fingerprint the compile cache and
    :class:`~repro.api.store.ArtifactStore` use — a trace sits next to
    the artifact it was captured from."""
    from pathlib import Path

    from repro.api.store import safe_store_key

    return Path(directory) / f"{safe_store_key(fingerprint)}.trace"
