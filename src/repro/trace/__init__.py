"""Binary event-trace subsystem: capture, decode, and analyze the
event streams the execution layer otherwise aggregates away.

* :mod:`repro.trace.format` — the versioned varint/delta wire format
  (~2-4 bytes/event; constraints documented there);
* :class:`TraceWriter` — streaming encoder the accelerator's replay
  and program loops emit into (opt-in; zero overhead when detached);
* :class:`TraceReader` — streaming decoder with kind/cycle-window/unit
  filtered queries that never materialize the stream;
* :mod:`repro.trace.analyze` — per-phase cycle breakdowns, bank/PE
  heatmaps, event-cycle histograms, and exact cross-validation of a
  trace against its :class:`~repro.api.types.ExecutionReport`;
* ``python -m repro.trace`` — the offline CLI over all of the above.

Capture plumbs through the API layer: ``session.run(kernel,
trace="out.trace")`` (any :class:`~repro.api.adapters.RunOptions`
entry point) writes the file and reports a summary in
``report.extras["trace"]``; a :class:`~repro.api.service.ReasonService`
built with ``trace_dir=`` stores per-request traces addressed by the
same content fingerprint its artifact store uses.
"""

from repro.trace.format import (
    EVENT_SCHEMA,
    MAGIC,
    VERSION,
    EventKind,
    TraceFormatError,
    TraceRecord,
)
from repro.trace.reader import TraceReader, read_trace
from repro.trace.writer import TraceSummary, TraceWriter
from repro.trace.analyze import (
    BankHeatmap,
    CycleHistogram,
    PhaseBreakdown,
    ValidationResult,
    bank_heatmap,
    cross_validate,
    cycle_histogram,
    phase_breakdown,
    trace_artifact_path,
)

__all__ = [
    "EventKind",
    "TraceRecord",
    "TraceFormatError",
    "TraceReader",
    "TraceWriter",
    "TraceSummary",
    "read_trace",
    "BankHeatmap",
    "CycleHistogram",
    "PhaseBreakdown",
    "ValidationResult",
    "bank_heatmap",
    "cross_validate",
    "cycle_histogram",
    "phase_breakdown",
    "trace_artifact_path",
    "EVENT_SCHEMA",
    "MAGIC",
    "VERSION",
]
