"""repro: reproduction of "REASON: Accelerating Probabilistic Logical
Reasoning for Scalable Neuro-Symbolic Intelligence" (HPCA 2026).

Package map:

* :mod:`repro.logic` — CNF/SAT (DPLL, CDCL, cube-and-conquer) and FOL
  (unification, clausification, resolution, forward chaining);
* :mod:`repro.pc` — probabilistic circuits (inference, flows, learning,
  CNF compilation / weighted model counting);
* :mod:`repro.hmm` — hidden Markov models (forward-backward, Viterbi,
  Baum-Welch, DFA-constrained decoding);
* :mod:`repro.core` — the paper's contribution: unified DAG
  representation with adaptive pruning and two-input regularization,
  the DAG→VLIW compiler, the tree-PE accelerator model, and the
  GPU-integration system layer;
* :mod:`repro.workloads` — the six neuro-symbolic evaluation workloads
  over synthetic datasets;
* :mod:`repro.baselines` — device cost models, roofline, and kernel
  characterization;
* :mod:`repro.profiling` — workload characterization (runtime splits,
  sparsity);
* :mod:`repro.api` — the public front door: :class:`ReasonSession`
  over pluggable kernel adapters and execution backends, with compile
  caching and pipelined batch execution.

Quickstart::

    from repro import ReasonSession

    session = ReasonSession()
    report = session.run(kernel)  # CNF | Circuit | HMM | Dag
"""

__version__ = "1.1.0"

from repro.api import (  # noqa: E402  (public re-exports)
    Backend,
    BatchResult,
    CompiledArtifact,
    ExecutionReport,
    ReasonSession,
    RunOptions,
    list_backends,
    register_adapter,
    register_backend,
)

__all__ = [
    "__version__",
    "ReasonSession",
    "Backend",
    "ExecutionReport",
    "BatchResult",
    "CompiledArtifact",
    "RunOptions",
    "list_backends",
    "register_adapter",
    "register_backend",
]
