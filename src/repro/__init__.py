"""repro: reproduction of "REASON: Accelerating Probabilistic Logical
Reasoning for Scalable Neuro-Symbolic Intelligence" (HPCA 2026).

Package map:

* :mod:`repro.logic` — CNF/SAT (DPLL, CDCL, cube-and-conquer) and FOL
  (unification, clausification, resolution, forward chaining);
* :mod:`repro.pc` — probabilistic circuits (inference, flows, learning,
  CNF compilation / weighted model counting);
* :mod:`repro.hmm` — hidden Markov models (forward-backward, Viterbi,
  Baum-Welch, DFA-constrained decoding);
* :mod:`repro.core` — the paper's contribution: unified DAG
  representation with adaptive pruning and two-input regularization,
  the DAG→VLIW compiler, the tree-PE accelerator model, and the
  GPU-integration system layer;
* :mod:`repro.workloads` — the six neuro-symbolic evaluation workloads
  over synthetic datasets;
* :mod:`repro.baselines` — device cost models, roofline, and kernel
  characterization;
* :mod:`repro.profiling` — workload characterization (runtime splits,
  sparsity);
* :mod:`repro.api` — the public front door: :class:`ReasonSession`
  over pluggable kernel adapters and execution backends, with compile
  caching and pipelined batch execution, and :class:`ReasonService`
  for async, sharded serving over many sessions;
* :mod:`repro.costmodel` — predicted per-request latency/energy per
  backend class from compile artifacts, calibrated online from
  execution reports; drives the time-aware scheduling policies and
  heterogeneous (reason/gpu/cpu) shard placement;
* :mod:`repro.trace` — opt-in binary event traces of the accelerator's
  modeled execution (versioned varint/delta wire format, streaming
  reader, offline analysis tools and the ``python -m repro.trace``
  CLI, including trace-to-trace regression diffing);
* :mod:`repro.metrics` — live telemetry over the serving path:
  lock-cheap counters/gauges/log-bucket histograms in a
  :class:`MetricsRegistry`, per-request :class:`RequestSpan` records
  (queue-wait/compile/execute/e2e plus predicted-vs-actual residuals),
  Prometheus-text/JSON exposition, and snapshot diffing via the
  ``python -m repro.metrics`` CLI — zero overhead when off;
* :mod:`repro.analysis` — static program verification and project
  idiom linting: :func:`verify_program` abstractly interprets compiled
  VLIW streams against six invariant families (def-before-use
  residency, spill/reload pairing, bank capacity, issue order, cycle
  monotonicity, stats consistency) without executing; opt-in hooks
  (``ReasonSession(verify=True)``, ``CompileCache(verifier=...)``)
  keep bad programs out of caches and stores; the ``python -m
  repro.analysis`` CLI verifies kernels and lints the source tree;
* :mod:`repro.faults` — deterministic seeded fault injection
  (:class:`FaultPlan`: compile/execute errors, latency, worker
  crashes, store failures and on-disk corruption) exercising the
  serving layer's resilience — supervised shard workers, bounded
  retries, per-shard circuit breakers, and per-request deadlines
  (:mod:`repro.api.resilience`).

Quickstart::

    from repro import ReasonSession, ReasonService

    session = ReasonSession()
    report = session.run(kernel)  # CNF | Circuit | HMM | Dag

    with ReasonService(shards=4, policy="cache-affinity") as service:
        future = service.submit(kernel, queries=8)
        report = future.result()
"""

__version__ = "1.9.0"

from repro.api import (  # noqa: E402  (public re-exports)
    ArtifactStore,
    Backend,
    BatchResult,
    CircuitBreaker,
    CompiledArtifact,
    DeadlineExceeded,
    DiskStore,
    ExecutionReport,
    ReasonFuture,
    ReasonService,
    ReasonSession,
    RetriesExhausted,
    RetryPolicy,
    RunOptions,
    ServiceBatchResult,
    ShardCrashed,
    SharedStore,
    list_backends,
    list_policies,
    register_adapter,
    register_backend,
    register_policy,
)

# After repro.api: the fault plan builds on the resilience taxonomy.
from repro.faults import FaultInjected, FaultPlan  # noqa: E402
from repro.costmodel import (  # noqa: E402  (public re-exports)
    Calibrator,
    CostEstimator,
    CostFeatures,
    CostPrediction,
)
from repro.metrics import (  # noqa: E402  (public re-exports)
    MetricsRegistry,
    RequestSpan,
    SpanLog,
    diff_snapshots,
    render_prometheus,
)
from repro.trace import (  # noqa: E402  (public re-exports)
    TraceReader,
    TraceWriter,
    read_trace,
)

__all__ = [
    "__version__",
    "ReasonSession",
    "ReasonService",
    "ReasonFuture",
    "Backend",
    "ExecutionReport",
    "BatchResult",
    "ServiceBatchResult",
    "CompiledArtifact",
    "ArtifactStore",
    "SharedStore",
    "DiskStore",
    "RunOptions",
    "CostEstimator",
    "Calibrator",
    "CostFeatures",
    "CostPrediction",
    "MetricsRegistry",
    "RequestSpan",
    "SpanLog",
    "diff_snapshots",
    "render_prometheus",
    "TraceReader",
    "TraceWriter",
    "read_trace",
    "RetryPolicy",
    "CircuitBreaker",
    "DeadlineExceeded",
    "ShardCrashed",
    "RetriesExhausted",
    "FaultPlan",
    "FaultInjected",
    "list_backends",
    "list_policies",
    "register_adapter",
    "register_backend",
    "register_policy",
]
