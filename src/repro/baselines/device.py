"""Device cost models for the paper's hardware baselines (Table III).

Each device is a roofline with per-kernel-class efficiency derating:
``time = max(flops / (peak · eff_c), bytes / (bw · eff_m)) + overhead``.
The efficiency factors come from the paper's Table II profiling (e.g.
GPUs sustain ~97% of peak on MatMul but ~15% on logic kernels, and
symbolic kernels are DRAM-bound at ~70% bandwidth utilization with poor
cache hit rates).  CPU factors reflect the paper's observation of <5%
parallel efficiency on symbolic kernels; the TPU-like array executes
only dense tensor ops natively and pays an emulation penalty on
symbolic/probabilistic kernels; the DPU-like tree array runs irregular
DAGs well but lacks REASON's symbolic machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List


class KernelClass(enum.Enum):
    """Kernel families with distinct execution characteristics."""

    NEURAL_GEMM = "neural_gemm"
    NEURAL_SOFTMAX = "neural_softmax"
    SPARSE_MATVEC = "sparse_matvec"
    LOGIC = "logic"  # SAT/FOL deduction
    MARGINAL = "marginal"  # PC bottom-up passes
    BAYESIAN = "bayesian"  # HMM message passing / belief update

    @property
    def is_neural(self) -> bool:
        return self in (KernelClass.NEURAL_GEMM, KernelClass.NEURAL_SOFTMAX)


@dataclass(frozen=True)
class KernelProfile:
    """Work description of one kernel launch."""

    kernel_class: KernelClass
    flops: float
    bytes_accessed: float
    launches: int = 1

    @property
    def operational_intensity(self) -> float:
        if self.bytes_accessed <= 0:
            return float("inf")
        return self.flops / self.bytes_accessed


@dataclass(frozen=True)
class DeviceModel:
    """A roofline device with kernel-class efficiency derating.

    ``peak_tflops`` / ``bandwidth_gbps`` define the roofline;
    ``compute_efficiency`` / ``bandwidth_efficiency`` derate it per
    kernel class; ``launch_overhead_s`` charges per kernel launch (the
    host-device round trip that dominates fine-grained symbolic kernels
    on discrete devices).
    """

    name: str
    peak_tflops: float
    bandwidth_gbps: float
    tdp_w: float
    idle_w: float
    area_mm2: float
    tech_nm: int
    launch_overhead_s: float
    compute_efficiency: Dict[KernelClass, float]
    bandwidth_efficiency: Dict[KernelClass, float]

    def kernel_time_s(self, profile: KernelProfile) -> float:
        eff_c = self.compute_efficiency[profile.kernel_class]
        eff_m = self.bandwidth_efficiency[profile.kernel_class]
        compute_s = profile.flops / (self.peak_tflops * 1e12 * eff_c)
        memory_s = profile.bytes_accessed / (self.bandwidth_gbps * 1e9 * eff_m)
        return max(compute_s, memory_s) + self.launch_overhead_s * profile.launches

    def run(self, profiles: Iterable[KernelProfile]) -> float:
        """Serialized execution time of a kernel sequence."""
        return sum(self.kernel_time_s(p) for p in profiles)

    def kernel_energy_j(self, profile: KernelProfile) -> float:
        """Energy of one kernel launch (the cost model's unit: busy
        power scaled by the class's sustained activity)."""
        activity = self.compute_efficiency[profile.kernel_class]
        power = self.idle_w + (self.tdp_w - self.idle_w) * max(activity, 0.1)
        return power * self.kernel_time_s(profile)

    def energy_j(self, profiles: Iterable[KernelProfile]) -> float:
        """Energy: busy power scaled by sustained utilization per kernel.

        Memory-bound kernels keep the chip partially idle, so the power
        draw interpolates between idle and TDP with the compute
        efficiency as the activity factor.
        """
        return sum(self.kernel_energy_j(profile) for profile in profiles)


def _eff(neural_gemm, neural_softmax, sparse, logic, marginal, bayesian) -> Dict[KernelClass, float]:
    return {
        KernelClass.NEURAL_GEMM: neural_gemm,
        KernelClass.NEURAL_SOFTMAX: neural_softmax,
        KernelClass.SPARSE_MATVEC: sparse,
        KernelClass.LOGIC: logic,
        KernelClass.MARGINAL: marginal,
        KernelClass.BAYESIAN: bayesian,
    }


# Compute efficiencies follow Table II's "Compute Throughput" row for
# the GPU; bandwidth efficiencies its "DRAM BW Utilization" row.
RTX_A6000 = DeviceModel(
    name="RTX A6000",
    peak_tflops=38.7,
    bandwidth_gbps=768.0,
    tdp_w=300.0,
    idle_w=25.0,
    area_mm2=628.0,
    tech_nm=8,
    launch_overhead_s=6e-6,
    compute_efficiency=_eff(0.968, 0.622, 0.325, 0.147, 0.350, 0.311),
    bandwidth_efficiency=_eff(0.80, 0.60, 0.574, 0.703, 0.608, 0.680),
)

ORIN_NX = DeviceModel(
    name="Orin NX",
    peak_tflops=1.88,  # fp32-equivalent sustained for the 512-core GPU
    bandwidth_gbps=102.4,
    tdp_w=15.0,
    idle_w=5.0,
    area_mm2=450.0,
    tech_nm=8,
    launch_overhead_s=9e-6,
    compute_efficiency=_eff(0.94, 0.58, 0.29, 0.125, 0.31, 0.27),
    bandwidth_efficiency=_eff(0.75, 0.55, 0.52, 0.65, 0.56, 0.62),
)

XEON_CPU = DeviceModel(
    name="Xeon CPU",
    peak_tflops=3.2,  # 60 cores × AVX-512 FMA at ~1.7 GHz sustained
    bandwidth_gbps=307.0,
    tdp_w=270.0,
    idle_w=80.0,
    area_mm2=1600.0,
    tech_nm=10,
    launch_overhead_s=0.5e-6,
    # <5% parallel efficiency on symbolic (paper Sec. VII-C): symbolic
    # kernels run essentially single-threaded with pointer-chasing
    # access patterns, so effective bandwidth collapses to ~20 GB/s.
    compute_efficiency=_eff(0.70, 0.45, 0.12, 0.04, 0.06, 0.05),
    bandwidth_efficiency=_eff(0.65, 0.50, 0.20, 0.07, 0.08, 0.08),
)

V100 = DeviceModel(
    name="V100",
    peak_tflops=15.7,
    bandwidth_gbps=900.0,
    tdp_w=300.0,
    idle_w=30.0,
    area_mm2=815.0,
    tech_nm=12,
    launch_overhead_s=7e-6,
    compute_efficiency=_eff(0.95, 0.60, 0.30, 0.13, 0.32, 0.29),
    bandwidth_efficiency=_eff(0.78, 0.58, 0.55, 0.68, 0.58, 0.65),
)

A100 = DeviceModel(
    name="A100",
    peak_tflops=78.0,  # fp16 tensor-core class for the LLM side
    bandwidth_gbps=1935.0,
    tdp_w=400.0,
    idle_w=40.0,
    area_mm2=826.0,
    tech_nm=7,
    launch_overhead_s=6e-6,
    compute_efficiency=_eff(0.97, 0.65, 0.34, 0.155, 0.36, 0.33),
    bandwidth_efficiency=_eff(0.82, 0.62, 0.58, 0.71, 0.62, 0.69),
)

# TPU-like systolic array (8 × 128×128 PEs): superb on dense tensor ops;
# symbolic/probabilistic kernels must be emulated as dense ops with very
# low useful occupancy (Fig. 13 shows ~75-110× worse than REASON).
TPU_LIKE = DeviceModel(
    name="TPU-like",
    peak_tflops=96.0,
    bandwidth_gbps=1200.0,
    tdp_w=192.0,
    idle_w=30.0,
    area_mm2=400.0,
    tech_nm=7,
    launch_overhead_s=10e-6,
    compute_efficiency=_eff(0.98, 0.50, 0.05, 0.004, 0.006, 0.005),
    bandwidth_efficiency=_eff(0.85, 0.55, 0.30, 0.25, 0.28, 0.26),
)

# DPU-like tree array (MAERI/DPU-v2 class): executes irregular DAGs
# natively but at small scale, without watched-literals hardware or the
# two-level pipeline (Fig. 13: ~2-24× slower than REASON on symbolic).
DPU_LIKE = DeviceModel(
    name="DPU-like",
    peak_tflops=0.056,  # 8 PEs × 56 nodes at 500 MHz
    bandwidth_gbps=25.6,
    tdp_w=1.10,
    idle_w=0.3,
    area_mm2=3.20,
    tech_nm=28,
    launch_overhead_s=1e-6,
    compute_efficiency=_eff(0.60, 0.40, 0.55, 0.25, 0.60, 0.55),
    bandwidth_efficiency=_eff(0.60, 0.50, 0.60, 0.45, 0.62, 0.58),
)


def all_devices() -> List[DeviceModel]:
    return [XEON_CPU, RTX_A6000, ORIN_NX, V100, A100, TPU_LIKE, DPU_LIKE]


def device_named(name: str) -> DeviceModel:
    """Look a device model up by (case-insensitive) name.  The cost
    model falls back to this catalog for substrate names that aren't
    registered backends, so it can price devices nothing serves yet."""
    wanted = name.strip().lower()
    for device in all_devices():
        if device.name.lower() == wanted:
            return device
    known = ", ".join(device.name for device in all_devices())
    raise KeyError(f"unknown device {name!r} (known: {known})")
