"""Kernel inefficiency characterization (paper Table II).

An analytical GPU pipeline model derives the Table II metrics — compute
throughput, ALU utilization, cache throughput/hit rates, DRAM bandwidth
utilization, warp/branch efficiency, eligible warps — from each kernel
class's *access signature*: how regular its control flow is, how
coalesced its memory accesses are, and how much data reuse it has.
Signatures are set from the structure of our own kernels (dense GEMM,
softmax rows, CSR SpMV, watched-literal BCP, PC bottom-up passes, HMM
belief updates), and the derived metrics reproduce the irregularity gap
Table II measures with Nsight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.device import KernelClass


@dataclass(frozen=True)
class AccessSignature:
    """Structural properties driving hardware behavior.

    All in [0, 1]: ``coalescing`` — fraction of accesses that fall in
    the same cache line as a neighbor thread's; ``reuse`` — fraction of
    accesses hitting previously-touched data; ``branch_uniformity`` —
    probability all threads of a warp agree on a branch; ``parallel_occupancy``
    — fraction of threads with useful work; ``arithmetic_density`` —
    ALU ops per issued instruction.
    """

    coalescing: float
    reuse: float
    branch_uniformity: float
    parallel_occupancy: float
    arithmetic_density: float


#: Signatures per kernel class, set from kernel structure:
#: GEMM: blocked, fully coalesced, heavy reuse.  Softmax: streaming rows.
#: SpMV: irregular columns.  Logic/BCP: pointer chasing, data-dependent
#: branches.  Marginal (PC): scattered children reads.  Bayesian (HMM):
#: state-vector reads with transition gathers.
_SIGNATURES: Dict[KernelClass, AccessSignature] = {
    KernelClass.NEURAL_GEMM: AccessSignature(0.98, 0.90, 0.99, 0.97, 0.85),
    KernelClass.NEURAL_SOFTMAX: AccessSignature(0.92, 0.80, 0.99, 0.93, 0.55),
    KernelClass.SPARSE_MATVEC: AccessSignature(0.45, 0.50, 0.62, 0.52, 0.35),
    KernelClass.LOGIC: AccessSignature(0.22, 0.35, 0.58, 0.45, 0.28),
    KernelClass.MARGINAL: AccessSignature(0.35, 0.42, 0.65, 0.55, 0.40),
    KernelClass.BAYESIAN: AccessSignature(0.38, 0.40, 0.68, 0.50, 0.42),
}


@dataclass(frozen=True)
class KernelMetrics:
    """The Table II rows for one kernel class (all percentages)."""

    compute_throughput: float
    alu_utilization: float
    l1_throughput: float
    l2_throughput: float
    l1_hit_rate: float
    l2_hit_rate: float
    dram_bw_utilization: float
    warp_execution_efficiency: float
    branch_efficiency: float
    eligible_warps_per_cycle: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "Compute Throughput (%)": self.compute_throughput,
            "ALU Utilization (%)": self.alu_utilization,
            "L1 Cache Throughput (%)": self.l1_throughput,
            "L2 Cache Throughput (%)": self.l2_throughput,
            "L1 Cache Hit Rate (%)": self.l1_hit_rate,
            "L2 Cache Hit Rate (%)": self.l2_hit_rate,
            "DRAM BW Utilization (%)": self.dram_bw_utilization,
            "Warp Execution Efficiency (%)": self.warp_execution_efficiency,
            "Branch Efficiency (%)": self.branch_efficiency,
            "Eligible Warps/Cycle (%)": self.eligible_warps_per_cycle,
        }


def characterize_kernel(kernel_class: KernelClass) -> KernelMetrics:
    """Derive the Table II metrics from a kernel's access signature."""
    s = _SIGNATURES[kernel_class]
    warp_eff = 100.0 * (0.5 * s.branch_uniformity + 0.5 * s.parallel_occupancy)
    branch_eff = 100.0 * (0.55 + 0.45 * s.branch_uniformity)
    l1_hit = 100.0 * (0.30 + 0.65 * s.reuse * (0.5 + 0.5 * s.coalescing))
    l2_hit = 100.0 * (0.28 + 0.52 * s.reuse)
    # Throughput: useful issue rate limited by occupancy, divergence and
    # memory stalls (poor coalescing stalls the LSU pipeline).
    stall_factor = 0.35 + 0.65 * s.coalescing
    compute = 100.0 * s.parallel_occupancy * s.branch_uniformity * stall_factor
    alu = 100.0 * min(1.0, s.arithmetic_density + 0.25) * s.parallel_occupancy * (
        0.55 + 0.45 * s.branch_uniformity
    )
    l1_throughput = 100.0 * s.coalescing * s.parallel_occupancy * (0.55 + 0.35 * s.reuse)
    l2_throughput = l1_throughput * (1.0 - 0.55 * l1_hit / 100.0)
    # Kernels with poor reuse push traffic to DRAM.
    dram = 100.0 * (1.0 - l2_hit / 100.0) * (0.85 - 0.25 * s.arithmetic_density) + 10.0 * (
        1.0 - s.coalescing
    )
    eligible = 8.0 * s.parallel_occupancy * s.branch_uniformity * (0.4 + 0.6 * s.coalescing)
    return KernelMetrics(
        compute_throughput=round(compute, 1),
        alu_utilization=round(alu, 1),
        l1_throughput=round(l1_throughput, 1),
        l2_throughput=round(l2_throughput, 1),
        l1_hit_rate=round(l1_hit, 1),
        l2_hit_rate=round(l2_hit, 1),
        dram_bw_utilization=round(min(dram, 100.0), 1),
        warp_execution_efficiency=round(warp_eff, 1),
        branch_efficiency=round(branch_eff, 1),
        eligible_warps_per_cycle=round(eligible, 1),
    )


#: Column order of the paper's Table II.
TABLE2_KERNELS: List[Tuple[str, KernelClass]] = [
    ("MatMul", KernelClass.NEURAL_GEMM),
    ("Softmax", KernelClass.NEURAL_SOFTMAX),
    ("Sparse MatVec", KernelClass.SPARSE_MATVEC),
    ("Logic", KernelClass.LOGIC),
    ("Marginal", KernelClass.MARGINAL),
    ("Bayesian", KernelClass.BAYESIAN),
]
