"""Hardware baseline cost models (paper Table III) and analyses.

Event/roofline models of the comparison devices — Xeon CPU, RTX A6000,
Jetson Orin NX, V100/A100, a TPU-like systolic array and a DPU-like tree
array — plus the roofline analysis (Fig. 3(d)) and the kernel
inefficiency characterization (Table II).  These substitute for the
paper's real-hardware measurements and Accel-Sim runs: what the
evaluation needs from them is relative kernel times per device class,
which the models compute from first principles (peak throughput, memory
bandwidth, and per-kernel-class efficiency factors measured in Table II).
"""

from repro.baselines.device import (
    DeviceModel,
    KernelClass,
    KernelProfile,
    XEON_CPU,
    RTX_A6000,
    ORIN_NX,
    V100,
    A100,
    TPU_LIKE,
    DPU_LIKE,
    all_devices,
)
from repro.baselines.roofline import roofline_point, attainable_performance, RooflinePoint
from repro.baselines.kernels import characterize_kernel, KernelMetrics, TABLE2_KERNELS

__all__ = [
    "DeviceModel",
    "KernelClass",
    "KernelProfile",
    "XEON_CPU",
    "RTX_A6000",
    "ORIN_NX",
    "V100",
    "A100",
    "TPU_LIKE",
    "DPU_LIKE",
    "all_devices",
    "roofline_point",
    "attainable_performance",
    "RooflinePoint",
    "characterize_kernel",
    "KernelMetrics",
    "TABLE2_KERNELS",
]
