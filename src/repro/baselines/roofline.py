"""Roofline analysis (paper Fig. 3(d)).

Attainable performance = min(peak compute, intensity × bandwidth);
symbolic and probabilistic kernels sit far left on the intensity axis
(< 1 FLOP/byte), pinning them under the bandwidth roof — the
"memory-bound" diagnosis driving REASON's memory-centric design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.baselines.device import DeviceModel, KernelProfile


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel plotted on a device's roofline."""

    label: str
    operational_intensity: float  # FLOPS / byte
    attainable_tflops: float
    achieved_tflops: float
    memory_bound: bool

    @property
    def efficiency(self) -> float:
        if self.attainable_tflops == 0:
            return 0.0
        return self.achieved_tflops / self.attainable_tflops


def attainable_performance(device: DeviceModel, intensity: float) -> float:
    """Roofline ceiling in TFLOPS at the given operational intensity."""
    bandwidth_tflops = intensity * device.bandwidth_gbps * 1e9 / 1e12
    return min(device.peak_tflops, bandwidth_tflops)


def roofline_point(
    device: DeviceModel, profile: KernelProfile, label: str = ""
) -> RooflinePoint:
    """Locate a kernel on the device roofline.

    ``achieved`` applies the device's efficiency factors; a kernel is
    memory-bound when its bandwidth-limited ceiling sits below peak.
    """
    intensity = profile.operational_intensity
    ceiling = attainable_performance(device, intensity)
    time_s = device.kernel_time_s(profile)
    achieved = profile.flops / time_s / 1e12 if time_s > 0 else 0.0
    ridge = device.peak_tflops * 1e12 / (device.bandwidth_gbps * 1e9)
    return RooflinePoint(
        label=label or profile.kernel_class.value,
        operational_intensity=intensity,
        attainable_tflops=ceiling,
        achieved_tflops=achieved,
        memory_bound=intensity < ridge,
    )


def roofline_series(
    device: DeviceModel, profiles: Sequence[Tuple[str, KernelProfile]]
) -> List[RooflinePoint]:
    return [roofline_point(device, profile, label) for label, profile in profiles]
