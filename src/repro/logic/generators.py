"""Structured and random CNF generators used by the benchmarks.

The paper evaluates logic kernels on closed research datasets; these
generators produce instances of the same structural classes (random
k-SAT near/below threshold, pigeonhole, graph coloring, planted
satisfiable instances) so every solver and hardware experiment runs on
reproducible inputs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.logic.cnf import CNF, Clause


def random_ksat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: Optional[int] = None,
) -> CNF:
    """Sample a uniform random k-SAT formula.

    Each clause contains ``k`` distinct variables with random polarity.
    """
    if k > num_vars:
        raise ValueError("clause width k cannot exceed the variable count")
    rng = random.Random(seed)
    clauses: List[Clause] = []
    variables = list(range(1, num_vars + 1))
    for _ in range(num_clauses):
        chosen = rng.sample(variables, k)
        clauses.append(Clause(v if rng.random() < 0.5 else -v for v in chosen))
    return CNF(clauses, num_vars)


def planted_sat(
    num_vars: int,
    num_clauses: int,
    k: int = 3,
    seed: Optional[int] = None,
) -> Tuple[CNF, dict]:
    """Sample a satisfiable k-SAT formula with a planted model.

    Returns the formula and the planted assignment.  Every clause is
    guaranteed to contain at least one literal satisfied by the plant.
    """
    rng = random.Random(seed)
    plant = {v: rng.random() < 0.5 for v in range(1, num_vars + 1)}
    variables = list(range(1, num_vars + 1))
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        chosen = rng.sample(variables, min(k, num_vars))
        lits = [v if rng.random() < 0.5 else -v for v in chosen]
        if not any(plant[abs(l)] == (l > 0) for l in lits):
            fix = rng.randrange(len(lits))
            v = abs(lits[fix])
            lits[fix] = v if plant[v] else -v
        clauses.append(Clause(lits))
    return CNF(clauses, num_vars), plant


def pigeonhole(holes: int) -> CNF:
    """PHP(holes+1, holes): provably unsatisfiable, hard for resolution.

    Variable p(i, j) means pigeon ``i`` sits in hole ``j``.
    """
    pigeons = holes + 1

    def var(i: int, j: int) -> int:
        return i * holes + j + 1

    formula = CNF(num_vars=pigeons * holes)
    for i in range(pigeons):
        formula.add_clause([var(i, j) for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                formula.add_clause([-var(i1, j), -var(i2, j)])
    return formula


def graph_coloring_cnf(
    edges: Sequence[Tuple[int, int]],
    num_nodes: int,
    colors: int,
) -> CNF:
    """Encode graph k-coloring: node ``n`` gets exactly one of ``colors``."""

    def var(node: int, color: int) -> int:
        return node * colors + color + 1

    formula = CNF(num_vars=num_nodes * colors)
    for node in range(num_nodes):
        formula.add_clause([var(node, c) for c in range(colors)])
        for c1 in range(colors):
            for c2 in range(c1 + 1, colors):
                formula.add_clause([-var(node, c1), -var(node, c2)])
    for a, b in edges:
        for c in range(colors):
            formula.add_clause([-var(a, c), -var(b, c)])
    return formula


def random_graph(num_nodes: int, num_edges: int, seed: Optional[int] = None) -> List[Tuple[int, int]]:
    """Sample a simple undirected random graph as an edge list."""
    rng = random.Random(seed)
    seen = set()
    edges: List[Tuple[int, int]] = []
    max_edges = num_nodes * (num_nodes - 1) // 2
    target = min(num_edges, max_edges)
    while len(edges) < target:
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        edges.append(key)
    return edges


def redundant_sat(
    num_vars: int,
    num_clauses: int,
    redundancy: float = 0.4,
    seed: Optional[int] = None,
) -> Tuple[CNF, dict]:
    """A planted-SAT instance carrying prunable redundancy.

    A fraction ``redundancy`` of the clause budget goes to (a) binary
    implication chains consistent with the planted model and (b) wide
    clauses containing literals those chains imply — exactly the
    "logically implied literals" and hidden tautologies the paper's
    Stage-2 pruning removes.  The rest is planted 3-SAT.  Returns the
    formula and the planted model.
    """
    rng = random.Random(seed)
    base_clauses = int(num_clauses * (1.0 - redundancy))
    formula, plant = planted_sat(num_vars, base_clauses, k=3, seed=seed)

    def planted_literal(v: int) -> int:
        return v if plant[v] else -v

    budget = num_clauses - base_clauses
    variables = list(range(1, num_vars + 1))
    chains: List[List[int]] = []
    while budget > 0:
        chain = [planted_literal(v) for v in rng.sample(variables, min(4, num_vars))]
        # Chain of implications l1 → l2 → l3 → l4 (all satisfied by plant).
        for a, b in zip(chain, chain[1:]):
            if budget <= 0:
                break
            formula.add_clause([-a, b])
            budget -= 1
        chains.append(chain)
        # A wide clause containing both an antecedent and its consequent:
        # the antecedent is hidden and prunable.
        if budget > 0 and len(chain) >= 3:
            extra = planted_literal(rng.choice(variables))
            formula.add_clause([chain[0], chain[-1], extra])
            budget -= 1
    return formula, plant


def chain_implications(num_vars: int) -> CNF:
    """A long binary implication chain x1 → x2 → ... → xn.

    Used by tests of implication-graph pruning: every later literal is
    hidden with respect to x1.
    """
    formula = CNF(num_vars=num_vars)
    for v in range(1, num_vars):
        formula.add_clause([-v, v + 1])
    return formula
