"""Conflict-driven clause learning (CDCL) SAT solver.

Implements the modern solver loop the paper builds its symbolic hardware
around: two-watched-literals Boolean constraint propagation (BCP), 1-UIP
conflict analysis with non-chronological backjumping, VSIDS-style
activity decay, Luby restarts and learned-clause deletion.

The watched-literal data structure mirrors the hardware organization in
Fig. 6(e): per-literal watch lists are singly linked so that a variable
assignment touches only the clauses on its own list (the WLs unit's
linked-list SRAM layout).  The solver additionally records an event
trace (decisions, implications, clause fetches, conflicts) that the
architecture simulator replays cycle by cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.cnf import CNF, Literal, var_of


class SolveResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class CDCLStats:
    """Search counters; the hardware model consumes these as a workload trace."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    learned_literals: int = 0
    restarts: int = 0
    max_decision_level: int = 0
    clause_fetches: int = 0
    deleted_clauses: int = 0


@dataclass(slots=True)
class TraceEvent:
    """One BCP-visible event, replayed by the accelerator simulator."""

    kind: str  # "decide" | "imply" | "conflict" | "learn" | "restart" | "backjump"
    literal: int = 0
    level: int = 0
    clause_size: int = 0


class _Clause:
    """Mutable clause with the two watched literals at positions 0 and 1."""

    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[Literal], learned: bool = False):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0


class CDCLSolver:
    """CDCL solver over a :class:`~repro.logic.cnf.CNF` formula.

    Parameters
    ----------
    var_decay:
        VSIDS activity decay factor applied after each conflict.
    restart_base:
        Conflict interval unit for the Luby restart sequence.
    clause_db_limit:
        Soft cap on learned clauses before deletion of low-activity ones.
    max_conflicts:
        Optional budget; exceeding it returns ``SolveResult.UNKNOWN``.
    record_trace:
        When True, keep the BCP event trace (costs memory on big runs).
    """

    def __init__(
        self,
        var_decay: float = 0.95,
        restart_base: int = 100,
        clause_db_limit: int = 4000,
        max_conflicts: Optional[int] = None,
        record_trace: bool = False,
    ):
        self.var_decay = var_decay
        self.restart_base = restart_base
        self.clause_db_limit = clause_db_limit
        self.max_conflicts = max_conflicts
        self.record_trace = record_trace
        self.stats = CDCLStats()
        self.trace: List[TraceEvent] = []
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        # Flat solver state; literal-indexed structures use
        # ``lit + base`` so negative literals map to 0..base-1 and
        # positive ones to base+1..2*base.  ``_val`` holds the truth
        # code of every literal (-1 unknown, 0 false, 1 true), stored
        # for both polarities so BCP never branches on literal sign.
        self._lit_base = 0
        self._watches: List[List[_Clause]] = []
        self._val: List[int] = []
        self._level: List[int] = []
        self._reason: List[Optional[_Clause]] = []
        self._trail: List[Literal] = []
        self._trail_lim: List[int] = []
        self._activity: List[float] = []
        self._activity_inc = 1.0
        self._qhead = 0

    # ----------------------------------------------------------------- api

    def solve(
        self, formula: CNF, assumptions: Sequence[Literal] = ()
    ) -> Tuple[SolveResult, Optional[Dict[int, bool]]]:
        """Solve the formula, returning (result, model-or-None)."""
        self._initialize(formula, assumptions)
        for clause in formula.clauses:
            if clause.is_empty:
                return SolveResult.UNSAT, None
        if not self._attach_all():
            return SolveResult.UNSAT, None

        for lit in assumptions:
            if not self._assume(lit):
                return SolveResult.UNSAT, None

        conflicts_until_restart = self._luby(self.stats.restarts + 1) * self.restart_base
        conflicts_since_restart = 0
        num_assumptions = len(self._trail_lim)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                self._emit("conflict", level=self._decision_level())
                if self._decision_level() <= num_assumptions:
                    return SolveResult.UNSAT, None
                if self.max_conflicts is not None and self.stats.conflicts > self.max_conflicts:
                    return SolveResult.UNKNOWN, None
                learned, backjump_level = self._analyze(conflict)
                backjump_level = max(backjump_level, num_assumptions)
                self._backjump(backjump_level)
                self._learn(learned)
                self._emit("learn", clause_size=len(learned))
                self._decay_activities()
            else:
                if conflicts_since_restart >= conflicts_until_restart:
                    self.stats.restarts += 1
                    conflicts_since_restart = 0
                    conflicts_until_restart = self._luby(self.stats.restarts + 1) * self.restart_base
                    self._backjump(num_assumptions)
                    self._emit("restart")
                if len(self._clauses) > len(formula.clauses) + self.clause_db_limit:
                    self._reduce_clause_db()
                lit = self._pick_branch_literal()
                if lit is None:
                    return SolveResult.SAT, self._model()
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self.stats.max_decision_level = max(
                    self.stats.max_decision_level, self._decision_level()
                )
                self._emit("decide", literal=lit, level=self._decision_level())
                self._enqueue(lit, reason=None)

    # ------------------------------------------------------------ internals

    def _initialize(self, formula: CNF, assumptions: Sequence[Literal] = ()) -> None:
        self.stats = CDCLStats()
        self.trace = []
        self._num_vars = formula.num_vars
        self._clauses = []
        # Size the arrays to cover assumption variables beyond num_vars.
        base = max(
            formula.num_vars, max((abs(lit) for lit in assumptions), default=0)
        )
        self._lit_base = base
        self._watches = [[] for _ in range(2 * base + 1)]
        self._val = [-1] * (2 * base + 1)
        self._level = [0] * (base + 1)
        self._reason = [None] * (base + 1)
        self._trail = []
        self._trail_lim = []
        self._activity = [0.0] * (base + 1)
        self._activity_inc = 1.0
        self._qhead = 0
        self._pending: List[_Clause] = []
        for clause in formula.clauses:
            if not clause.is_tautology:
                self._pending.append(_Clause(list(clause.literals)))

    def _model(self) -> Dict[int, bool]:
        val = self._val
        base = self._lit_base
        return {
            variable: code == 1
            for variable in range(1, base + 1)
            if (code := val[variable + base]) >= 0
        }

    def _attach_all(self) -> bool:
        """Attach initial clauses; returns False on immediate conflict."""
        for clause in self._pending:
            if len(clause.lits) == 1:
                lit = clause.lits[0]
                if self._value(lit) is False:
                    return False
                if self._value(lit) is None:
                    self._enqueue(lit, reason=clause)
                self._clauses.append(clause)
            else:
                self._clauses.append(clause)
                self._watch(clause.lits[0], clause)
                self._watch(clause.lits[1], clause)
        return self._propagate() is None

    def _watch(self, lit: Literal, clause: _Clause) -> None:
        self._watches[lit + self._lit_base].append(clause)

    def _value(self, lit: Literal) -> Optional[bool]:
        code = self._val[lit + self._lit_base]
        if code < 0:
            return None
        return code == 1

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _assume(self, lit: Literal) -> bool:
        """Push an assumption at a fresh decision level and propagate."""
        if self._value(lit) is False:
            return False
        self._trail_lim.append(len(self._trail))
        if self._value(lit) is None:
            self._enqueue(lit, reason=None)
        return self._propagate() is None

    def _enqueue(self, lit: Literal, reason: Optional[_Clause]) -> None:
        variable = var_of(lit)
        index = lit + self._lit_base
        self._val[index] = 1
        self._val[2 * self._lit_base - index] = 0
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._trail.append(lit)

    def _propagate(self) -> Optional[_Clause]:
        """Two-watched-literal BCP; returns the conflicting clause if any."""
        # Everything the inner loop touches is bound locally: flat
        # arrays replace the per-literal dict lookups, and truth tests
        # are one literal-indexed load and an int compare instead of a
        # ``_value``/``var_of`` call pair per literal.
        val = self._val
        level = self._level
        reason = self._reason
        trail = self._trail
        watches = self._watches
        base = self._lit_base
        two_base = 2 * base
        record = self.record_trace
        trace = self.trace
        decision_level = len(self._trail_lim)
        fetches = 0
        propagations = 0

        # The queue head can regress after backjumps.
        head = min(self._qhead, len(trail))
        while head < len(trail):
            lit = trail[head]
            head += 1
            false_lit = -lit
            false_idx = false_lit + base
            # In-place two-pointer compaction: surviving watchers slide
            # to the front of the same list (their scan order — exactly
            # what rebuilding the list produced, without allocating one
            # per trail literal).  Replacement-watch moves append to a
            # *different* literal's list, never this one, so the scan
            # window is stable.
            watchers = watches[false_idx]
            keep = 0
            trail_append = trail.append
            num_watchers = len(watchers)
            for idx in range(num_watchers):
                clause = watchers[idx]
                fetches += 1
                lits = clause.lits
                # Ensure the false literal sits at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                first_code = val[first + base]
                if first_code == 1:
                    watchers[keep] = clause
                    keep += 1
                    continue
                # Search a replacement watch.
                found = False
                for pos in range(2, len(lits)):
                    other = lits[pos]
                    if val[other + base] != 0:  # not false
                        lits[1], lits[pos] = other, lits[1]
                        watches[other + base].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watchers[keep] = clause
                keep += 1
                if first_code == 0:  # false: conflict
                    watchers[keep:] = watchers[idx + 1 :]
                    self._qhead = len(trail)
                    self.stats.clause_fetches += fetches
                    self.stats.propagations += propagations
                    return clause
                propagations += 1
                if record:
                    trace.append(
                        TraceEvent("imply", first, decision_level, len(lits))
                    )
                first_idx = first + base
                val[first_idx] = 1
                val[two_base - first_idx] = 0
                variable = first if first > 0 else -first
                level[variable] = decision_level
                reason[variable] = clause
                trail_append(first)
            del watchers[keep:]
        self._qhead = head
        self.stats.clause_fetches += fetches
        self.stats.propagations += propagations
        return None

    def _analyze(self, conflict: _Clause) -> Tuple[List[Literal], int]:
        """1-UIP conflict analysis.

        Returns the learned clause (asserting literal first) and the
        backjump level.
        """
        current_level = self._decision_level()
        levels = self._level
        trail = self._trail
        seen: set = set()
        learned: List[Literal] = []
        counter = 0
        lit: Optional[Literal] = None
        reason: Optional[_Clause] = conflict
        trail_idx = len(trail) - 1

        while True:
            assert reason is not None
            reason.activity += self._activity_inc
            for q in reason.lits:
                if lit is not None and q == lit:
                    continue
                variable = q if q > 0 else -q
                if variable in seen or levels[variable] == 0:
                    continue
                seen.add(variable)
                self._bump_activity(variable)
                if levels[variable] == current_level:
                    counter += 1
                else:
                    learned.append(q)
            # Walk the trail backwards to the next marked literal.
            while trail_idx >= 0 and abs(trail[trail_idx]) not in seen:
                trail_idx -= 1
            if trail_idx < 0:
                break
            lit = trail[trail_idx]
            variable = lit if lit > 0 else -lit
            seen.discard(variable)
            trail_idx -= 1
            counter -= 1
            if counter == 0:
                learned.insert(0, -lit)
                break
            reason = self._reason[variable]
            if reason is None:
                # Decision literal reached without a unique implication
                # point: learn the negation of the decision.
                learned.insert(0, -lit)
                break

        if len(learned) == 1:
            return learned, 0
        distinct = sorted({levels[var_of(q)] for q in learned[1:]}, reverse=True)
        backjump = distinct[0] if distinct else 0
        # Put a literal from the backjump level in the second watch slot.
        for pos in range(1, len(learned)):
            if levels[var_of(learned[pos])] == backjump:
                learned[1], learned[pos] = learned[pos], learned[1]
                break
        return learned, backjump

    def _backjump(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        cut = self._trail_lim[level]
        val = self._val
        base = self._lit_base
        two_base = 2 * base
        levels = self._level
        reasons = self._reason
        for lit in self._trail[cut:]:
            index = lit + base
            val[index] = -1
            val[two_base - index] = -1
            variable = lit if lit > 0 else -lit
            levels[variable] = 0
            reasons[variable] = None
        del self._trail[cut:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)
        self._emit("backjump", level=level)

    def _learn(self, learned: List[Literal]) -> None:
        self.stats.learned_clauses += 1
        self.stats.learned_literals += len(learned)
        clause = _Clause(list(learned), learned=True)
        clause.activity = self._activity_inc
        self._clauses.append(clause)
        if len(learned) >= 2:
            self._watch(learned[0], clause)
            self._watch(learned[1], clause)
        self._enqueue(learned[0], reason=clause if len(learned) >= 2 else None)

    def _reduce_clause_db(self) -> None:
        """Delete the lower-activity half of learned clauses not in use."""
        learned = [c for c in self._clauses if c.learned]
        learned.sort(key=lambda c: c.activity)
        locked = {id(r) for r in self._reason if r is not None}
        to_delete = {
            id(c)
            for c in learned[: len(learned) // 2]
            if id(c) not in locked and len(c.lits) > 2
        }
        if not to_delete:
            return
        self.stats.deleted_clauses += len(to_delete)
        self._clauses = [c for c in self._clauses if id(c) not in to_delete]
        self._watches = [
            [c for c in watchers if id(c) not in to_delete]
            for watchers in self._watches
        ]

    def _pick_branch_literal(self) -> Optional[Literal]:
        val = self._val
        base = self._lit_base
        activities = self._activity
        best_var: Optional[int] = None
        best_activity = -1.0
        for variable in range(1, self._num_vars + 1):
            if val[variable + base] >= 0:
                continue
            activity = activities[variable]
            if activity > best_activity:
                best_var, best_activity = variable, activity
        if best_var is None:
            return None
        return best_var  # positive polarity first; phase saving is overkill here

    def _bump_activity(self, variable: int) -> None:
        activities = self._activity
        bumped = activities[variable] + self._activity_inc
        activities[variable] = bumped
        if bumped > 1e100:
            for v in range(1, len(activities)):
                activities[v] *= 1e-100
            self._activity_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._activity_inc /= self.var_decay

    @staticmethod
    def _luby(i: int) -> int:
        """The Luby restart sequence 1,1,2,1,1,2,4,... (1-based index)."""
        x = i - 1
        size, seq = 1, 0
        while size < x + 1:
            seq += 1
            size = 2 * size + 1
        while size - 1 != x:
            size = (size - 1) >> 1
            seq -= 1
            x %= size
        return 1 << seq

    def _emit(self, kind: str, literal: int = 0, level: int = 0, clause_size: int = 0) -> None:
        if self.record_trace:
            self.trace.append(TraceEvent(kind, literal, level, clause_size))


def solve_cnf(formula: CNF, **kwargs) -> Tuple[SolveResult, Optional[Dict[int, bool]]]:
    """Convenience wrapper: run CDCL on a formula."""
    return CDCLSolver(**kwargs).solve(formula)
