"""Resolution theorem prover for first-order clause sets.

Refutation-style: to prove ``theory ⊨ goal`` we clausify
``theory ∪ {¬goal}`` and search for the empty clause by binary
resolution with factoring.  The paper's FOL DAG execution ("inference
rules act as graph transformation operators that derive contradictions
through node and edge expansion", Sec. IV-A-a) corresponds exactly to
this saturation loop; the prover records each step so proofs are
verifiable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.logic.fol.clausify import FOLClause, FOLLiteral, clausify_all
from repro.logic.fol.terms import Formula, Not, Predicate, Var
from repro.logic.fol.unification import substitute_predicate, unify_predicates


@dataclass(frozen=True)
class ProofStep:
    """One resolution (or factoring) inference."""

    conclusion: FOLClause
    premises: Tuple[int, ...]
    rule: str


@dataclass
class ProverStats:
    resolutions: int = 0
    factorings: int = 0
    clauses_generated: int = 0
    clauses_kept: int = 0


class ResolutionProver:
    """Saturation prover with subsumption-lite deduplication.

    Parameters
    ----------
    max_clauses:
        Generated-clause budget; exceeding it makes :meth:`prove` return
        ``None`` (unknown) rather than loop forever — first-order
        entailment is only semi-decidable.
    max_clause_width:
        Discard resolvents wider than this (keeps search shallow).
    """

    def __init__(self, max_clauses: int = 5000, max_clause_width: int = 12):
        self.max_clauses = max_clauses
        self.max_clause_width = max_clause_width
        self.stats = ProverStats()
        self.proof: List[ProofStep] = []

    def prove(self, theory: Iterable[Formula], goal: Formula) -> Optional[bool]:
        """Return True if the goal is entailed, None if budget exhausted.

        (False is never returned: failure to refute within budget does
        not establish non-entailment.)
        """
        clauses = clausify_all(list(theory) + [Not(goal)])
        return self.refute(clauses)

    def refute(self, clauses: List[FOLClause]) -> Optional[bool]:
        """Saturate; True when the empty clause is derived."""
        self.stats = ProverStats()
        self.proof = []
        kept: List[FOLClause] = []
        seen: Set[Tuple] = set()

        def canonical(clause: FOLClause) -> Tuple:
            return tuple(
                sorted((lit.positive, _atom_shape(lit.atom)) for lit in clause.literals)
            )

        queue: List[FOLClause] = []
        for clause in clauses:
            key = canonical(clause)
            if key not in seen:
                seen.add(key)
                queue.append(clause)

        while queue:
            current = queue.pop(0)
            if not current.literals:
                return True
            kept.append(current)
            self.stats.clauses_kept += 1
            index = len(kept) - 1
            for other_index, other in enumerate(kept):
                for resolvent in self._resolve_pair(current, other):
                    self.stats.resolutions += 1
                    self.stats.clauses_generated += 1
                    if self.stats.clauses_generated > self.max_clauses:
                        return None
                    if len(resolvent.literals) > self.max_clause_width:
                        continue
                    key = canonical(resolvent)
                    if key in seen:
                        continue
                    seen.add(key)
                    self.proof.append(
                        ProofStep(resolvent, (index, other_index), "resolution")
                    )
                    if not resolvent.literals:
                        return True
                    queue.append(resolvent)
            for factored in self._factor(current):
                self.stats.factorings += 1
                key = canonical(factored)
                if key not in seen:
                    seen.add(key)
                    self.proof.append(ProofStep(factored, (index,), "factoring"))
                    queue.append(factored)
        return False  # saturated without empty clause: genuinely not entailed

    def _resolve_pair(self, a: FOLClause, b: FOLClause) -> List[FOLClause]:
        """All binary resolvents of two clauses (variables renamed apart)."""
        b = _rename_apart(b, suffix="_r")
        out: List[FOLClause] = []
        for i, lit_a in enumerate(a.literals):
            for j, lit_b in enumerate(b.literals):
                if lit_a.positive == lit_b.positive:
                    continue
                subst = unify_predicates(lit_a.atom, lit_b.atom)
                if subst is None:
                    continue
                rest = [
                    FOLLiteral(substitute_predicate(l.atom, subst), l.positive)
                    for k, l in enumerate(a.literals)
                    if k != i
                ] + [
                    FOLLiteral(substitute_predicate(l.atom, subst), l.positive)
                    for k, l in enumerate(b.literals)
                    if k != j
                ]
                uniq: List[FOLLiteral] = []
                for lit in rest:
                    if lit not in uniq:
                        uniq.append(lit)
                if _is_tautology(uniq):
                    continue
                out.append(FOLClause(tuple(uniq)))
        return out

    def _factor(self, clause: FOLClause) -> List[FOLClause]:
        """Unify pairs of same-polarity literals within one clause."""
        out: List[FOLClause] = []
        for i, j in itertools.combinations(range(len(clause.literals)), 2):
            la, lb = clause.literals[i], clause.literals[j]
            if la.positive != lb.positive:
                continue
            subst = unify_predicates(la.atom, lb.atom)
            if subst is None:
                continue
            lits = [
                FOLLiteral(substitute_predicate(l.atom, subst), l.positive)
                for k, l in enumerate(clause.literals)
                if k != j
            ]
            uniq: List[FOLLiteral] = []
            for lit in lits:
                if lit not in uniq:
                    uniq.append(lit)
            out.append(FOLClause(tuple(uniq)))
        return out


def _is_tautology(literals: List[FOLLiteral]) -> bool:
    atoms = {(lit.atom, lit.positive) for lit in literals}
    return any((atom, not pos) in atoms for atom, pos in atoms)


def _rename_apart(clause: FOLClause, suffix: str) -> FOLClause:
    renaming: Dict[Var, Var] = {}

    def rename_term(term):
        from repro.logic.fol.terms import Const, Func

        if isinstance(term, Var):
            if term not in renaming:
                renaming[term] = Var(term.name + suffix)
            return renaming[term]
        if isinstance(term, Const):
            return term
        return Func(term.name, tuple(rename_term(a) for a in term.args))

    lits = tuple(
        FOLLiteral(
            Predicate(l.atom.name, tuple(rename_term(a) for a in l.atom.args)),
            l.positive,
        )
        for l in clause.literals
    )
    return FOLClause(lits)


def _atom_shape(atom: Predicate) -> Tuple:
    """Structure of an atom with variables anonymized (for dedup keys)."""

    def shape(term):
        if isinstance(term, Var):
            return ("var",)
        from repro.logic.fol.terms import Const

        if isinstance(term, Const):
            return ("const", term.name)
        return ("func", term.name) + tuple(shape(a) for a in term.args)

    return (atom.name,) + tuple(shape(a) for a in atom.args)
