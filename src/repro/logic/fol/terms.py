"""First-order logic terms and formulas as immutable trees."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union


@dataclass(frozen=True)
class Var:
    """A logic variable."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Const:
    """A constant (domain element)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Func:
    """A function application, e.g. fatherOf(x)."""

    name: str
    args: Tuple["Term", ...]

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


Term = Union[Var, Const, Func]


@dataclass(frozen=True)
class Predicate:
    """An atomic formula, e.g. Mentor(y)."""

    name: str
    args: Tuple[Term, ...] = ()

    def __repr__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class Not:
    operand: "Formula"

    def __repr__(self) -> str:
        return f"¬{self.operand!r}"


@dataclass(frozen=True)
class And:
    left: "Formula"
    right: "Formula"

    def __repr__(self) -> str:
        return f"({self.left!r} ∧ {self.right!r})"


@dataclass(frozen=True)
class Or:
    left: "Formula"
    right: "Formula"

    def __repr__(self) -> str:
        return f"({self.left!r} ∨ {self.right!r})"


@dataclass(frozen=True)
class Implies:
    left: "Formula"
    right: "Formula"

    def __repr__(self) -> str:
        return f"({self.left!r} → {self.right!r})"


@dataclass(frozen=True)
class Iff:
    left: "Formula"
    right: "Formula"

    def __repr__(self) -> str:
        return f"({self.left!r} ↔ {self.right!r})"


@dataclass(frozen=True)
class ForAll:
    variable: Var
    body: "Formula"

    def __repr__(self) -> str:
        return f"∀{self.variable.name}. {self.body!r}"


@dataclass(frozen=True)
class Exists:
    variable: Var
    body: "Formula"

    def __repr__(self) -> str:
        return f"∃{self.variable.name}. {self.body!r}"


Formula = Union[Predicate, Not, And, Or, Implies, Iff, ForAll, Exists]


def term_variables(term: Term) -> FrozenSet[Var]:
    """Free variables of a term."""
    if isinstance(term, Var):
        return frozenset([term])
    if isinstance(term, Const):
        return frozenset()
    out: FrozenSet[Var] = frozenset()
    for arg in term.args:
        out |= term_variables(arg)
    return out


def formula_variables(formula: Formula) -> FrozenSet[Var]:
    """Free variables of a formula."""
    if isinstance(formula, Predicate):
        out: FrozenSet[Var] = frozenset()
        for arg in formula.args:
            out |= term_variables(arg)
        return out
    if isinstance(formula, Not):
        return formula_variables(formula.operand)
    if isinstance(formula, (And, Or, Implies, Iff)):
        return formula_variables(formula.left) | formula_variables(formula.right)
    if isinstance(formula, (ForAll, Exists)):
        return formula_variables(formula.body) - {formula.variable}
    raise TypeError(f"unknown formula node: {formula!r}")


def conj(*parts: Formula) -> Formula:
    """Right-folded conjunction of one or more formulas."""
    if not parts:
        raise ValueError("conj of zero formulas")
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = And(part, out)
    return out


def disj(*parts: Formula) -> Formula:
    """Right-folded disjunction of one or more formulas."""
    if not parts:
        raise ValueError("disj of zero formulas")
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = Or(part, out)
    return out
