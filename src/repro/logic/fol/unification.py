"""Syntactic unification with occurs check."""

from __future__ import annotations

from typing import Dict, Optional

from repro.logic.fol.terms import Const, Func, Predicate, Term, Var, term_variables

Substitution = Dict[Var, Term]


def substitute(term: Term, subst: Substitution) -> Term:
    """Apply a substitution to a term, following chained bindings."""
    if isinstance(term, Var):
        bound = subst.get(term)
        if bound is None:
            return term
        # Follow the chain so callers never observe intermediate vars.
        return substitute(bound, subst) if bound != term else term
    if isinstance(term, Const):
        return term
    return Func(term.name, tuple(substitute(a, subst) for a in term.args))


def substitute_predicate(pred: Predicate, subst: Substitution) -> Predicate:
    """Apply a substitution to every argument of an atom."""
    return Predicate(pred.name, tuple(substitute(a, subst) for a in pred.args))


def _occurs(variable: Var, term: Term, subst: Substitution) -> bool:
    term = substitute(term, subst)
    return variable in term_variables(term)


def unify(a: Term, b: Term, subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Most general unifier of two terms, or None if they don't unify."""
    subst = dict(subst) if subst else {}
    stack = [(a, b)]
    while stack:
        left, right = stack.pop()
        left = substitute(left, subst)
        right = substitute(right, subst)
        if left == right:
            continue
        if isinstance(left, Var):
            if _occurs(left, right, subst):
                return None
            subst[left] = right
            continue
        if isinstance(right, Var):
            if _occurs(right, left, subst):
                return None
            subst[right] = left
            continue
        if isinstance(left, Const) or isinstance(right, Const):
            return None  # distinct constants or const-vs-func
        if left.name != right.name or len(left.args) != len(right.args):
            return None
        stack.extend(zip(left.args, right.args))
    return subst


def unify_predicates(
    a: Predicate, b: Predicate, subst: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two atoms (same predicate symbol and arity required)."""
    if a.name != b.name or len(a.args) != len(b.args):
        return None
    subst = dict(subst) if subst else {}
    for ta, tb in zip(a.args, b.args):
        subst = unify(ta, tb, subst)
        if subst is None:
            return None
    return subst
