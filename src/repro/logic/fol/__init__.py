"""First-order logic substrate: terms, formulas, unification,
clausification (Skolemization to CNF), resolution proving and
forward chaining.

FOL is the "slow thinking" language of the paper's workloads (Fig. 1):
AlphaGeometry-style deduction and LINC-style natural-language reasoning
both reduce to FOL entailment checks, which REASON executes as DAG
traversals after clausification.
"""

from repro.logic.fol.terms import (
    Var,
    Const,
    Func,
    Term,
    Predicate,
    Not,
    And,
    Or,
    Implies,
    Iff,
    ForAll,
    Exists,
    Formula,
)
from repro.logic.fol.unification import unify, substitute, Substitution
from repro.logic.fol.clausify import clausify, FOLClause, ground_to_cnf
from repro.logic.fol.resolution import ResolutionProver, ProofStep
from repro.logic.fol.chase import ForwardChainer, HornRule

__all__ = [
    "Var",
    "Const",
    "Func",
    "Term",
    "Predicate",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "ForAll",
    "Exists",
    "Formula",
    "unify",
    "substitute",
    "Substitution",
    "clausify",
    "FOLClause",
    "ground_to_cnf",
    "ResolutionProver",
    "ProofStep",
    "ForwardChainer",
    "HornRule",
]
