"""Forward chaining over Horn rules (the "rule reasoning" primitive).

Datalog-style semi-naive evaluation: rules with conjunctive bodies and a
single positive head are applied to a growing fact base until fixpoint.
This is the deduction engine used by the AlphaGeometry-style workload
(geometric deduction database) and the question-answering workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.logic.fol.terms import Const, Predicate, Term, Var
from repro.logic.fol.unification import (
    Substitution,
    substitute_predicate,
    unify_predicates,
)


@dataclass(frozen=True)
class HornRule:
    """``head :- body[0], body[1], ...`` with shared variables."""

    head: Predicate
    body: Tuple[Predicate, ...]
    name: str = ""

    def __repr__(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.head!r} :- {', '.join(map(repr, self.body))}"


@dataclass
class ChaseStats:
    iterations: int = 0
    rule_applications: int = 0
    facts_derived: int = 0
    unification_attempts: int = 0


class ForwardChainer:
    """Semi-naive forward chaining to fixpoint.

    Parameters
    ----------
    max_iterations:
        Fixpoint-round budget (guards non-terminating rule sets with
        function symbols).
    max_facts:
        Fact-base size budget.
    """

    def __init__(self, max_iterations: int = 100, max_facts: int = 100_000):
        self.max_iterations = max_iterations
        self.max_facts = max_facts
        self.stats = ChaseStats()
        self.derivations: Dict[Predicate, Tuple[str, Tuple[Predicate, ...]]] = {}

    def run(
        self, facts: Iterable[Predicate], rules: Iterable[HornRule]
    ) -> FrozenSet[Predicate]:
        """Return the least fixpoint of the rules over the facts."""
        self.stats = ChaseStats()
        self.derivations = {}
        rules = list(rules)
        base: Set[Predicate] = set(facts)
        by_name: Dict[str, Set[Predicate]] = {}
        for fact in base:
            by_name.setdefault(fact.name, set()).add(fact)
        delta: Set[Predicate] = set(base)

        while delta and self.stats.iterations < self.max_iterations:
            self.stats.iterations += 1
            fresh: Set[Predicate] = set()
            for rule in rules:
                # Semi-naive: require at least one body atom matched in delta.
                for pivot in range(len(rule.body)):
                    for new_fact in self._apply(rule, pivot, by_name, delta):
                        if new_fact not in base and new_fact not in fresh:
                            fresh.add(new_fact)
                            self.stats.facts_derived += 1
                            if len(base) + len(fresh) > self.max_facts:
                                raise RuntimeError("fact-base budget exhausted")
            base |= fresh
            for fact in fresh:
                by_name.setdefault(fact.name, set()).add(fact)
            delta = fresh
        return frozenset(base)

    def entails(
        self, facts: Iterable[Predicate], rules: Iterable[HornRule], goal: Predicate
    ) -> bool:
        """Ground-goal entailment via fixpoint membership."""
        closure = self.run(facts, rules)
        return goal in closure

    def _apply(
        self,
        rule: HornRule,
        pivot: int,
        by_name: Dict[str, Set[Predicate]],
        delta: Set[Predicate],
    ) -> List[Predicate]:
        """All head instances with body[pivot] bound to a delta fact."""
        out: List[Predicate] = []

        def extend(pos: int, subst: Substitution) -> None:
            if pos == len(rule.body):
                head = substitute_predicate(rule.head, subst)
                if _is_ground(head):
                    self.stats.rule_applications += 1
                    grounded_body = tuple(
                        substitute_predicate(b, subst) for b in rule.body
                    )
                    if head not in self.derivations:
                        self.derivations[head] = (rule.name, grounded_body)
                    out.append(head)
                return
            atom = rule.body[pos]
            pool = delta if pos == pivot else by_name.get(atom.name, set())
            for fact in pool:
                if fact.name != atom.name:
                    continue
                self.stats.unification_attempts += 1
                unified = unify_predicates(atom, fact, subst)
                if unified is not None:
                    extend(pos + 1, unified)

        extend(0, {})
        return out

    def explain(self, fact: Predicate) -> List[Tuple[Predicate, str, Tuple[Predicate, ...]]]:
        """Trace the derivation tree of a derived fact (proof transcript)."""
        trace: List[Tuple[Predicate, str, Tuple[Predicate, ...]]] = []
        stack = [fact]
        visited: Set[Predicate] = set()
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            derivation = self.derivations.get(current)
            if derivation is None:
                continue
            rule_name, body = derivation
            trace.append((current, rule_name, body))
            stack.extend(body)
        return trace


def _is_ground(atom: Predicate) -> bool:
    def ground(term: Term) -> bool:
        if isinstance(term, Var):
            return False
        if isinstance(term, Const):
            return True
        return all(ground(a) for a in term.args)

    return all(ground(a) for a in atom.args)
