"""Clausification: FOL formulas → clause normal form.

Implements the paper's Step-1 "Normalization" for FOL inputs
(Sec. IV-A-a): eliminate ↔ and →, push negations inward (NNF),
standardize variables apart, Skolemize existentials, drop universal
quantifiers, and distribute ∨ over ∧ to reach CNF.  The result is a list
of :class:`FOLClause` objects; when the clause set is ground it can be
lowered to a propositional :class:`~repro.logic.cnf.CNF` for SAT solving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.logic.cnf import CNF
from repro.logic.fol.terms import (
    And,
    Const,
    Exists,
    ForAll,
    Formula,
    Func,
    Iff,
    Implies,
    Not,
    Or,
    Predicate,
    Term,
    Var,
    formula_variables,
)
from repro.logic.fol.unification import Substitution, substitute


@dataclass(frozen=True)
class FOLLiteral:
    """A possibly-negated atom."""

    atom: Predicate
    positive: bool = True

    def negated(self) -> "FOLLiteral":
        return FOLLiteral(self.atom, not self.positive)

    def __repr__(self) -> str:
        return repr(self.atom) if self.positive else f"¬{self.atom!r}"


@dataclass(frozen=True)
class FOLClause:
    """A disjunction of FOL literals."""

    literals: Tuple[FOLLiteral, ...]

    def __len__(self) -> int:
        return len(self.literals)

    def __iter__(self):
        return iter(self.literals)

    def is_ground(self) -> bool:
        return all(
            not _term_has_var(arg) for lit in self.literals for arg in lit.atom.args
        )

    def __repr__(self) -> str:
        return " ∨ ".join(map(repr, self.literals)) if self.literals else "⊥"


def _term_has_var(term: Term) -> bool:
    if isinstance(term, Var):
        return True
    if isinstance(term, Const):
        return False
    return any(_term_has_var(a) for a in term.args)


class _Gensym:
    """Fresh-name source for standardization and Skolem symbols."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        n = self._counters.get(prefix, 0)
        self._counters[prefix] = n + 1
        return f"{prefix}{n}"


def _eliminate_arrows(f: Formula) -> Formula:
    if isinstance(f, Predicate):
        return f
    if isinstance(f, Not):
        return Not(_eliminate_arrows(f.operand))
    if isinstance(f, And):
        return And(_eliminate_arrows(f.left), _eliminate_arrows(f.right))
    if isinstance(f, Or):
        return Or(_eliminate_arrows(f.left), _eliminate_arrows(f.right))
    if isinstance(f, Implies):
        return Or(Not(_eliminate_arrows(f.left)), _eliminate_arrows(f.right))
    if isinstance(f, Iff):
        left = _eliminate_arrows(f.left)
        right = _eliminate_arrows(f.right)
        return And(Or(Not(left), right), Or(Not(right), left))
    if isinstance(f, ForAll):
        return ForAll(f.variable, _eliminate_arrows(f.body))
    if isinstance(f, Exists):
        return Exists(f.variable, _eliminate_arrows(f.body))
    raise TypeError(f"unknown formula node: {f!r}")


def _to_nnf(f: Formula) -> Formula:
    """Push negations to atoms (input must be arrow-free)."""
    if isinstance(f, Predicate):
        return f
    if isinstance(f, And):
        return And(_to_nnf(f.left), _to_nnf(f.right))
    if isinstance(f, Or):
        return Or(_to_nnf(f.left), _to_nnf(f.right))
    if isinstance(f, ForAll):
        return ForAll(f.variable, _to_nnf(f.body))
    if isinstance(f, Exists):
        return Exists(f.variable, _to_nnf(f.body))
    if isinstance(f, Not):
        g = f.operand
        if isinstance(g, Predicate):
            return f
        if isinstance(g, Not):
            return _to_nnf(g.operand)
        if isinstance(g, And):
            return Or(_to_nnf(Not(g.left)), _to_nnf(Not(g.right)))
        if isinstance(g, Or):
            return And(_to_nnf(Not(g.left)), _to_nnf(Not(g.right)))
        if isinstance(g, ForAll):
            return Exists(g.variable, _to_nnf(Not(g.body)))
        if isinstance(g, Exists):
            return ForAll(g.variable, _to_nnf(Not(g.body)))
    raise TypeError(f"formula not arrow-free: {f!r}")


def _standardize(f: Formula, gensym: _Gensym, renaming: Dict[Var, Var]) -> Formula:
    """Give every quantifier a unique variable."""
    if isinstance(f, Predicate):
        return Predicate(f.name, tuple(_rename_term(a, renaming) for a in f.args))
    if isinstance(f, Not):
        return Not(_standardize(f.operand, gensym, renaming))
    if isinstance(f, (And, Or)):
        cls = type(f)
        return cls(
            _standardize(f.left, gensym, renaming),
            _standardize(f.right, gensym, renaming),
        )
    if isinstance(f, (ForAll, Exists)):
        fresh = Var(gensym.fresh("v"))
        inner = dict(renaming)
        inner[f.variable] = fresh
        cls = type(f)
        return cls(fresh, _standardize(f.body, gensym, inner))
    raise TypeError(f"unexpected node during standardization: {f!r}")


def _rename_term(term: Term, renaming: Dict[Var, Var]) -> Term:
    if isinstance(term, Var):
        return renaming.get(term, term)
    if isinstance(term, Const):
        return term
    return Func(term.name, tuple(_rename_term(a, renaming) for a in term.args))


def _skolemize(f: Formula, gensym: _Gensym, universal: Tuple[Var, ...]) -> Formula:
    """Replace existentials with Skolem functions of enclosing universals."""
    if isinstance(f, Predicate):
        return f
    if isinstance(f, Not):
        return Not(_skolemize(f.operand, gensym, universal))
    if isinstance(f, (And, Or)):
        cls = type(f)
        return cls(
            _skolemize(f.left, gensym, universal),
            _skolemize(f.right, gensym, universal),
        )
    if isinstance(f, ForAll):
        return ForAll(f.variable, _skolemize(f.body, gensym, universal + (f.variable,)))
    if isinstance(f, Exists):
        if universal:
            skolem: Term = Func(gensym.fresh("sk"), universal)
        else:
            skolem = Const(gensym.fresh("sk"))
        body = _substitute_formula(f.body, {f.variable: skolem})
        return _skolemize(body, gensym, universal)
    raise TypeError(f"unexpected node during skolemization: {f!r}")


def _substitute_formula(f: Formula, subst: Substitution) -> Formula:
    if isinstance(f, Predicate):
        return Predicate(f.name, tuple(substitute(a, subst) for a in f.args))
    if isinstance(f, Not):
        return Not(_substitute_formula(f.operand, subst))
    if isinstance(f, (And, Or, Implies, Iff)):
        cls = type(f)
        return cls(
            _substitute_formula(f.left, subst), _substitute_formula(f.right, subst)
        )
    if isinstance(f, (ForAll, Exists)):
        narrowed = {v: t for v, t in subst.items() if v != f.variable}
        cls = type(f)
        return cls(f.variable, _substitute_formula(f.body, narrowed))
    raise TypeError(f"unexpected node during substitution: {f!r}")


def _drop_universals(f: Formula) -> Formula:
    if isinstance(f, ForAll):
        return _drop_universals(f.body)
    if isinstance(f, (And, Or)):
        cls = type(f)
        return cls(_drop_universals(f.left), _drop_universals(f.right))
    if isinstance(f, Not):
        return Not(_drop_universals(f.operand))
    return f


def _to_clauses(f: Formula) -> List[List[FOLLiteral]]:
    """Distribute ∨ over ∧ on a quantifier-free NNF matrix."""
    if isinstance(f, Predicate):
        return [[FOLLiteral(f, True)]]
    if isinstance(f, Not) and isinstance(f.operand, Predicate):
        return [[FOLLiteral(f.operand, False)]]
    if isinstance(f, And):
        return _to_clauses(f.left) + _to_clauses(f.right)
    if isinstance(f, Or):
        left = _to_clauses(f.left)
        right = _to_clauses(f.right)
        return [lc + rc for lc in left for rc in right]
    raise TypeError(f"matrix not in NNF: {f!r}")


def clausify(formula: Formula, gensym: Optional[_Gensym] = None) -> List[FOLClause]:
    """Full clausification pipeline for one formula."""
    gensym = gensym or _Gensym()
    f = _eliminate_arrows(formula)
    f = _to_nnf(f)
    # Close over free variables: interpret them as universally quantified.
    for variable in sorted(formula_variables(f), key=lambda v: v.name):
        f = ForAll(variable, f)
    f = _standardize(f, gensym, {})
    f = _skolemize(f, gensym, ())
    f = _drop_universals(f)
    clauses = []
    for lits in _to_clauses(f):
        # Deduplicate literals inside the clause.
        uniq: List[FOLLiteral] = []
        for lit in lits:
            if lit not in uniq:
                uniq.append(lit)
        clauses.append(FOLClause(tuple(uniq)))
    return clauses


def clausify_all(formulas: Iterable[Formula]) -> List[FOLClause]:
    """Clausify a theory, sharing one gensym so Skolem names stay unique."""
    gensym = _Gensym()
    out: List[FOLClause] = []
    for formula in formulas:
        out.extend(clausify(formula, gensym))
    return out


def ground_to_cnf(clauses: Iterable[FOLClause]) -> Tuple[CNF, Dict[Predicate, int]]:
    """Lower a *ground* clause set to propositional CNF.

    Each distinct ground atom becomes a propositional variable; the
    returned map records the correspondence.  Raises ``ValueError`` on
    non-ground input.
    """
    atom_ids: Dict[Predicate, int] = {}
    cnf = CNF()
    for clause in clauses:
        if not clause.is_ground():
            raise ValueError(f"clause is not ground: {clause!r}")
        lits = []
        for lit in clause.literals:
            if lit.atom not in atom_ids:
                atom_ids[lit.atom] = len(atom_ids) + 1
            v = atom_ids[lit.atom]
            lits.append(v if lit.positive else -v)
        cnf.add_clause(lits)
    cnf.num_vars = max(cnf.num_vars, len(atom_ids))
    return cnf, atom_ids
