"""Cube-and-conquer SAT solving (Heule et al.), paper Sec. II-C / V-E.

A lookahead DPLL phase splits the search space into "cubes" (partial
assignments); each cube is then "conquered" by an independent CDCL
solver.  REASON maps the cube phase onto its broadcast/reduction tree
and hands conflicting cubes to the scalar PE for CDCL analysis; this
module is the functional reference for that execution and supplies the
per-cube work items that the architecture simulator schedules across
tree PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.logic.cdcl import CDCLSolver, SolveResult
from repro.logic.cnf import CNF, Literal
from repro.logic.dpll import DPLLSolver


@dataclass(frozen=True)
class Cube:
    """A partial assignment delimiting one independent subproblem."""

    literals: Tuple[Literal, ...]

    def __len__(self) -> int:
        return len(self.literals)


@dataclass
class CubeStats:
    cubes_generated: int = 0
    cubes_refuted_inline: int = 0
    cdcl_conflicts_total: int = 0
    cdcl_decisions_total: int = 0


class CubeAndConquerSolver:
    """Split with lookahead DPLL, conquer with CDCL.

    Parameters
    ----------
    cutoff_depth:
        Depth of the splitting tree; generates at most ``2**cutoff_depth``
        cubes.
    conquer_kwargs:
        Extra keyword arguments forwarded to each conquer-phase
        :class:`~repro.logic.cdcl.CDCLSolver`.
    """

    def __init__(self, cutoff_depth: int = 4, **conquer_kwargs):
        self.cutoff_depth = cutoff_depth
        self.conquer_kwargs = conquer_kwargs
        self.stats = CubeStats()

    def split(self, formula: CNF) -> List[Cube]:
        """Generate cubes with lookahead variable ranking.

        Branches on the strongest lookahead variable at each level; cubes
        refuted by unit propagation during splitting are dropped (counted
        in ``stats.cubes_refuted_inline``).
        """
        self.stats = CubeStats()
        lookahead = DPLLSolver(use_lookahead=True)
        cubes: List[Cube] = []

        def recurse(working: CNF, prefix: Tuple[Literal, ...], depth: int) -> None:
            reduced, _, conflict = lookahead._propagate(working, {})
            if conflict:
                self.stats.cubes_refuted_inline += 1
                return
            if depth >= self.cutoff_depth or not reduced.clauses:
                cubes.append(Cube(prefix))
                self.stats.cubes_generated += 1
                return
            variable = lookahead._lookahead_variable(reduced)
            if variable == 0:
                cubes.append(Cube(prefix))
                self.stats.cubes_generated += 1
                return
            for lit in (variable, -variable):
                recurse(reduced.condition(lit), prefix + (lit,), depth + 1)

        recurse(formula, (), 0)
        return cubes

    def solve(self, formula: CNF) -> Tuple[SolveResult, Optional[Dict[int, bool]]]:
        """Full cube-and-conquer: SAT if any cube is satisfiable."""
        cubes = self.split(formula)
        if not cubes and self.stats.cubes_refuted_inline:
            return SolveResult.UNSAT, None
        for cube in cubes:
            solver = CDCLSolver(**self.conquer_kwargs)
            result, model = solver.solve(formula, assumptions=cube.literals)
            self.stats.cdcl_conflicts_total += solver.stats.conflicts
            self.stats.cdcl_decisions_total += solver.stats.decisions
            if result is SolveResult.SAT:
                return SolveResult.SAT, model
            if result is SolveResult.UNKNOWN:
                return SolveResult.UNKNOWN, None
        return SolveResult.UNSAT, None

    def conquer_workloads(self, formula: CNF) -> List[Tuple[Cube, "CDCLSolver"]]:
        """Solve every cube independently and return the per-cube solvers.

        Used by the architecture simulator to model concurrent CDCL
        "conquer" engines (Fig. 9 top): each returned solver carries the
        trace/statistics for its cube.
        """
        pairs: List[Tuple[Cube, CDCLSolver]] = []
        for cube in self.split(formula):
            solver = CDCLSolver(record_trace=True, **self.conquer_kwargs)
            solver.solve(formula, assumptions=cube.literals)
            pairs.append((cube, solver))
        return pairs
