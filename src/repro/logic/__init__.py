"""Symbolic logic substrate: CNF/SAT solving and first-order logic.

This package implements the logical-reasoning kernels that REASON
accelerates: propositional CNF formulas with DIMACS I/O, a DPLL solver
with lookahead, a CDCL solver with two-watched-literals and 1-UIP clause
learning, implication-graph-based preprocessing (the paper's Stage-2
pruning for logic kernels), cube-and-conquer parallel solving, and a
first-order-logic layer (unification, clausification, resolution,
forward chaining).
"""

from repro.logic.cnf import CNF, Clause, Literal, parse_dimacs, to_dimacs
from repro.logic.dpll import DPLLSolver, DPLLStats
from repro.logic.cdcl import CDCLSolver, CDCLStats, SolveResult
from repro.logic.implication_graph import (
    BinaryImplicationGraph,
    prune_hidden_literals,
)
from repro.logic.cube_and_conquer import CubeAndConquerSolver, Cube
from repro.logic.subsumption import eliminate_subsumed, preprocess
from repro.logic.generators import (
    random_ksat,
    pigeonhole,
    graph_coloring_cnf,
    planted_sat,
)

__all__ = [
    "CNF",
    "Clause",
    "Literal",
    "parse_dimacs",
    "to_dimacs",
    "DPLLSolver",
    "DPLLStats",
    "CDCLSolver",
    "CDCLStats",
    "SolveResult",
    "BinaryImplicationGraph",
    "prune_hidden_literals",
    "CubeAndConquerSolver",
    "Cube",
    "eliminate_subsumed",
    "preprocess",
    "random_ksat",
    "pigeonhole",
    "graph_coloring_cnf",
    "planted_sat",
]
