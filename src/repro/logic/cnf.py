"""Propositional CNF formulas.

Literals use the DIMACS integer convention: variable ``v`` is a positive
integer, literal ``+v`` asserts the variable, ``-v`` its negation.  A
clause is a disjunction of literals; a CNF formula is a conjunction of
clauses.  This representation is shared by every solver in
:mod:`repro.logic` and by the unified DAG builders in
:mod:`repro.core.dag.builders`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

Literal = int


def neg(lit: Literal) -> Literal:
    """Return the negation of a literal."""
    return -lit


def var_of(lit: Literal) -> int:
    """Return the variable index of a literal."""
    return abs(lit)


@dataclass(frozen=True)
class Clause:
    """An immutable disjunction of literals.

    Duplicate literals are removed on construction; the literal order is
    normalized so structurally equal clauses compare equal.
    """

    literals: Tuple[Literal, ...]

    def __init__(self, literals: Iterable[Literal]):
        uniq = sorted(set(literals), key=lambda l: (abs(l), l < 0))
        if any(l == 0 for l in uniq):
            raise ValueError("literal 0 is reserved by the DIMACS format")
        object.__setattr__(self, "literals", tuple(uniq))

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __contains__(self, lit: Literal) -> bool:
        return lit in self.literals

    @property
    def is_empty(self) -> bool:
        """An empty clause is unsatisfiable."""
        return not self.literals

    @property
    def is_unit(self) -> bool:
        return len(self.literals) == 1

    @property
    def is_tautology(self) -> bool:
        """True when the clause contains both a literal and its negation."""
        lits = set(self.literals)
        return any(-l in lits for l in lits)

    def variables(self) -> FrozenSet[int]:
        return frozenset(abs(l) for l in self.literals)

    def without(self, lit: Literal) -> "Clause":
        """Return a copy with ``lit`` removed."""
        return Clause(l for l in self.literals if l != lit)

    def evaluate(self, assignment: Dict[int, bool]) -> Optional[bool]:
        """Evaluate under a (possibly partial) assignment.

        Returns True if satisfied, False if falsified, None if undecided.
        """
        undecided = False
        for lit in self.literals:
            value = assignment.get(abs(lit))
            if value is None:
                undecided = True
            elif value == (lit > 0):
                return True
        return None if undecided else False


@dataclass
class CNF:
    """A CNF formula: a conjunction of :class:`Clause` objects.

    ``num_vars`` may exceed the highest variable mentioned by a clause
    (DIMACS permits declaring unused variables).
    """

    clauses: List[Clause] = field(default_factory=list)
    num_vars: int = 0

    def __post_init__(self) -> None:
        self.clauses = [c if isinstance(c, Clause) else Clause(c) for c in self.clauses]
        highest = max((max(c.variables(), default=0) for c in self.clauses), default=0)
        self.num_vars = max(self.num_vars, highest)

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def add_clause(self, literals: Iterable[Literal]) -> Clause:
        clause = literals if isinstance(literals, Clause) else Clause(literals)
        self.clauses.append(clause)
        highest = max(clause.variables(), default=0)
        self.num_vars = max(self.num_vars, highest)
        return clause

    def variables(self) -> FrozenSet[int]:
        out: set = set()
        for clause in self.clauses:
            out |= clause.variables()
        return frozenset(out)

    def copy(self) -> "CNF":
        return CNF(list(self.clauses), self.num_vars)

    @property
    def num_literals(self) -> int:
        """Total literal occurrences across all clauses."""
        return sum(len(c) for c in self.clauses)

    def evaluate(self, assignment: Dict[int, bool]) -> Optional[bool]:
        """Evaluate under a (possibly partial) assignment."""
        undecided = False
        for clause in self.clauses:
            value = clause.evaluate(assignment)
            if value is False:
                return False
            if value is None:
                undecided = True
        return None if undecided else True

    def is_satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        return self.evaluate(assignment) is True

    def simplify(self) -> "CNF":
        """Drop tautological and duplicate clauses."""
        seen = set()
        kept: List[Clause] = []
        for clause in self.clauses:
            if clause.is_tautology or clause.literals in seen:
                continue
            seen.add(clause.literals)
            kept.append(clause)
        return CNF(kept, self.num_vars)

    def condition(self, lit: Literal) -> "CNF":
        """Return the formula conditioned on ``lit`` being true.

        Satisfied clauses are removed and the negated literal is deleted
        from the remaining clauses (may produce empty clauses).
        """
        kept: List[Clause] = []
        for clause in self.clauses:
            if lit in clause:
                continue
            kept.append(clause.without(-lit) if -lit in clause else clause)
        return CNF(kept, self.num_vars)


def parse_dimacs(text: str) -> CNF:
    """Parse a DIMACS CNF document."""
    clauses: List[Clause] = []
    declared_vars = 0
    pending: List[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) < 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            declared_vars = int(parts[2])
            continue
        for token in line.split():
            value = int(token)
            if value == 0:
                if pending:
                    clauses.append(Clause(pending))
                    pending = []
            else:
                pending.append(value)
    if pending:
        clauses.append(Clause(pending))
    return CNF(clauses, declared_vars)


def to_dimacs(formula: CNF, comment: str = "") -> str:
    """Serialize a CNF formula to DIMACS text."""
    lines = []
    if comment:
        lines.extend(f"c {row}" for row in comment.splitlines())
    lines.append(f"p cnf {formula.num_vars} {len(formula.clauses)}")
    for clause in formula.clauses:
        lines.append(" ".join(str(l) for l in clause.literals) + " 0")
    return "\n".join(lines) + "\n"


def assignment_from_literals(literals: Sequence[Literal]) -> Dict[int, bool]:
    """Convert a literal list (e.g. a model) into a variable→bool map."""
    return {abs(l): l > 0 for l in literals}
