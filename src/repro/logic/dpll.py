"""DPLL SAT solver with unit propagation, pure-literal elimination and
optional lookahead branching.

The DPLL procedure is the "cube" side of the paper's cube-and-conquer
execution (Sec. II-C, Sec. V-E): REASON's tree PEs broadcast decisions
and reduce implications for DPLL subproblems, while CDCL handles the
conquer phase.  This software solver is the functional reference the
hardware simulator is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.logic.cnf import CNF, Literal, var_of


@dataclass
class DPLLStats:
    """Search counters exposed for profiling and hardware-trace derivation."""

    decisions: int = 0
    propagations: int = 0
    backtracks: int = 0
    pure_eliminations: int = 0
    max_depth: int = 0


@dataclass
class DPLLSolver:
    """Recursive DPLL with unit propagation.

    Parameters
    ----------
    use_pure_literal:
        Enable pure-literal elimination (sound for satisfiability but
        not model counting).
    use_lookahead:
        Branch on the variable whose two sub-cubes trigger the most unit
        propagations (the lookahead heuristic from cube-and-conquer).
    max_decisions:
        Abort with ``None`` once this many decisions were made; used by
        the cube generator to bound cube cost.
    """

    use_pure_literal: bool = True
    use_lookahead: bool = False
    max_decisions: Optional[int] = None
    stats: DPLLStats = field(default_factory=DPLLStats)

    def solve(self, formula: CNF, assumptions: Tuple[Literal, ...] = ()) -> Optional[Dict[int, bool]]:
        """Return a satisfying assignment or ``None`` when UNSAT.

        Raises :class:`BudgetExceeded` when ``max_decisions`` runs out.
        """
        self.stats = DPLLStats()
        working = formula.simplify()
        for lit in assumptions:
            working = working.condition(lit)
        model = self._search(working, {abs(l): l > 0 for l in assumptions}, depth=0)
        return model

    def _search(
        self, formula: CNF, assignment: Dict[int, bool], depth: int
    ) -> Optional[Dict[int, bool]]:
        self.stats.max_depth = max(self.stats.max_depth, depth)
        formula, assignment, conflict = self._propagate(formula, assignment)
        if conflict:
            return None
        if self.use_pure_literal:
            formula, assignment = self._eliminate_pure(formula, assignment)
        if not formula.clauses:
            return dict(assignment)
        if self.max_decisions is not None and self.stats.decisions >= self.max_decisions:
            raise BudgetExceeded(self.stats.decisions)

        branch_var = self._pick_branch_variable(formula)
        self.stats.decisions += 1
        for value in (True, False):
            lit = branch_var if value else -branch_var
            extended = dict(assignment)
            extended[branch_var] = value
            model = self._search(formula.condition(lit), extended, depth + 1)
            if model is not None:
                return model
            self.stats.backtracks += 1
        return None

    def _propagate(
        self, formula: CNF, assignment: Dict[int, bool]
    ) -> Tuple[CNF, Dict[int, bool], bool]:
        """Exhaustively apply the unit-clause rule."""
        assignment = dict(assignment)
        while True:
            unit: Optional[Literal] = None
            for clause in formula.clauses:
                if clause.is_empty:
                    return formula, assignment, True
                if clause.is_unit:
                    unit = clause.literals[0]
                    break
            if unit is None:
                return formula, assignment, False
            self.stats.propagations += 1
            assignment[var_of(unit)] = unit > 0
            formula = formula.condition(unit)

    def _eliminate_pure(
        self, formula: CNF, assignment: Dict[int, bool]
    ) -> Tuple[CNF, Dict[int, bool]]:
        assignment = dict(assignment)
        while True:
            polarity: Dict[int, int] = {}
            for clause in formula.clauses:
                for lit in clause:
                    polarity[var_of(lit)] = polarity.get(var_of(lit), 0) | (1 if lit > 0 else 2)
            pure = [v if p == 1 else -v for v, p in polarity.items() if p in (1, 2)]
            if not pure:
                return formula, assignment
            for lit in pure:
                self.stats.pure_eliminations += 1
                assignment[var_of(lit)] = lit > 0
                formula = formula.condition(lit)

    def _pick_branch_variable(self, formula: CNF) -> int:
        if self.use_lookahead:
            return self._lookahead_variable(formula)
        counts: Dict[int, int] = {}
        for clause in formula.clauses:
            for lit in clause:
                counts[var_of(lit)] = counts.get(var_of(lit), 0) + 1
        return max(counts.items(), key=lambda kv: kv[1])[0]

    def _lookahead_variable(self, formula: CNF) -> int:
        """Score each candidate by propagation strength of both branches.

        This mirrors the lookahead ranking LA(·) in the paper's Fig. 9:
        the DPLL node preferring the sub-cube with stronger implied
        reductions.
        """
        best_var, best_score = 0, -1.0
        for variable in sorted(formula.variables()):
            pos = self._propagation_gain(formula, variable)
            negv = self._propagation_gain(formula, -variable)
            score = pos * negv + pos + negv
            if score > best_score:
                best_var, best_score = variable, score
        return best_var

    def _propagation_gain(self, formula: CNF, lit: Literal) -> float:
        reduced, _, conflict = self._propagate(formula.condition(lit), {})
        if conflict:
            return float(formula.num_literals)
        return float(formula.num_literals - reduced.num_literals)

    def lookahead_scores(self, formula: CNF) -> Dict[int, float]:
        """Public lookahead ranking used by cube-and-conquer splitting."""
        scores: Dict[int, float] = {}
        for variable in sorted(formula.variables()):
            pos = self._propagation_gain(formula, variable)
            negv = self._propagation_gain(formula, -variable)
            scores[variable] = pos * negv + pos + negv
        return scores


class BudgetExceeded(RuntimeError):
    """Raised when the solver exhausts its decision budget."""

    def __init__(self, decisions: int):
        super().__init__(f"decision budget exhausted after {decisions} decisions")
        self.decisions = decisions
