"""Binary implication graphs and hidden-literal pruning (paper Sec. IV-B-a).

Every binary clause ``(l ∨ l')`` induces the implications ``¬l → l'`` and
``¬l' → l``.  The resulting directed graph over literals captures forced
assignments; a literal that implies another literal of the same clause is
*hidden* — removing it is a self-subsuming resolution step, so the clause
can be narrowed without changing satisfiability (hidden literal
elimination, HLE).  A clause entailed through the implication chains of
the *other* clauses is a hidden tautology and can be dropped (HTE).
Failed literals (literals whose implication closure contains a
complementary pair) can be asserted negatively.

Soundness requires care on two points that a naive reading of the paper
glosses over: (1) a clause may not justify its own removal through the
edges it itself induces, and (2) removals must be applied sequentially
against the *current* formula, since two clauses can each be redundant
with respect to the other but not simultaneously removable.  The
implementation below maintains the implication graph incrementally with
reference-counted edges to honor both.

This module is the logic half of REASON's adaptive DAG pruning stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.logic.cnf import CNF, Clause, Literal


@dataclass
class PruneReport:
    """What hidden-literal pruning removed."""

    literals_removed: int = 0
    clauses_removed: int = 0
    failed_literals: List[Literal] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.literals_removed or self.clauses_removed or self.failed_literals)


class BinaryImplicationGraph:
    """Directed implication graph over literals, with ref-counted edges.

    Reference counting lets callers exclude the edges a specific binary
    clause induces (to avoid circular self-justification) and lets the
    pruner keep the graph consistent as clauses are removed or narrowed.
    """

    def __init__(self, formula: Optional[CNF] = None):
        self._succ: Dict[Literal, Dict[Literal, int]] = {}
        self.num_edges = 0
        if formula is not None:
            for clause in formula.clauses:
                if len(clause) == 2:
                    self.add_clause_edges(clause)

    def add_clause_edges(self, clause: Clause) -> None:
        """Register the two implications of a binary clause."""
        a, b = clause.literals
        self._add_edge(-a, b)
        self._add_edge(-b, a)

    def remove_clause_edges(self, clause: Clause) -> None:
        """Unregister a binary clause's implications."""
        a, b = clause.literals
        self._remove_edge(-a, b)
        self._remove_edge(-b, a)

    def _add_edge(self, src: Literal, dst: Literal) -> None:
        bucket = self._succ.setdefault(src, {})
        if dst not in bucket:
            self.num_edges += 1
        bucket[dst] = bucket.get(dst, 0) + 1

    def _remove_edge(self, src: Literal, dst: Literal) -> None:
        bucket = self._succ.get(src)
        if not bucket or dst not in bucket:
            return
        bucket[dst] -= 1
        if bucket[dst] == 0:
            del bucket[dst]
            self.num_edges -= 1

    def successors(self, lit: Literal) -> FrozenSet[Literal]:
        return frozenset(self._succ.get(lit, ()))

    def reachable(
        self, lit: Literal, exclude: Optional[Clause] = None
    ) -> FrozenSet[Literal]:
        """All literals implied by ``lit`` (excluding ``lit`` itself).

        Depth-first traversal, linear in the graph size as the paper
        requires.  When ``exclude`` is a binary clause, edges only that
        clause induces are ignored.
        """
        forbidden: Set[Tuple[Literal, Literal]] = set()
        if exclude is not None and len(exclude) == 2:
            a, b = exclude.literals
            for src, dst in ((-a, b), (-b, a)):
                if self._succ.get(src, {}).get(dst, 0) == 1:
                    forbidden.add((src, dst))
        seen: Set[Literal] = set()
        stack = [lit]
        while stack:
            current = stack.pop()
            for nxt in self._succ.get(current, ()):
                if (current, nxt) in forbidden:
                    continue
                if nxt not in seen and nxt != lit:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    def implies(self, a: Literal, b: Literal) -> bool:
        return b in self.reachable(a)

    def reaches_any(
        self,
        lit: Literal,
        targets: Set[Literal],
        exclude: Optional[Clause] = None,
    ) -> bool:
        """Whether ``lit``'s closure intersects ``targets``.

        Same traversal as :meth:`reachable` but stops at the first hit,
        so hidden-literal checks don't materialize whole closures.
        ``lit`` itself never counts (it is excluded from the closure).
        """
        forbidden: Set[Tuple[Literal, Literal]] = set()
        if exclude is not None and len(exclude) == 2:
            a, b = exclude.literals
            for src, dst in ((-a, b), (-b, a)):
                if self._succ.get(src, {}).get(dst, 0) == 1:
                    forbidden.add((src, dst))
        succ = self._succ
        seen: Set[Literal] = set()
        stack = [lit]
        while stack:
            current = stack.pop()
            for nxt in succ.get(current, ()):
                if forbidden and (current, nxt) in forbidden:
                    continue
                if nxt not in seen and nxt != lit:
                    if nxt in targets:
                        return True
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def closure_has_complement(self, lit: Literal) -> bool:
        """Whether ``lit``'s closure contains ``¬lit`` or any pair
        ``x``/``¬x`` — detected incrementally so the traversal stops at
        the first contradiction instead of materializing the closure.
        """
        succ = self._succ
        seen: Set[Literal] = set()
        stack = [lit]
        while stack:
            current = stack.pop()
            for nxt in succ.get(current, ()):
                if nxt not in seen and nxt != lit:
                    if nxt == -lit or -nxt in seen:
                        return True
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def failed_literals(self, variables: Iterable[int]) -> List[Literal]:
        """Literals whose closure contains a complementary pair.

        If asserting ``l`` forces both ``x`` and ``¬x``, then ``¬l`` is a
        consequence of the formula.
        """
        failed: List[Literal] = []
        for variable in variables:
            for lit in (variable, -variable):
                if self.closure_has_complement(lit):
                    failed.append(lit)
                    break  # asserting the other polarity is then forced anyway
        return failed


def prune_hidden_literals(
    formula: CNF, max_clause_width: int = 64
) -> Tuple[CNF, PruneReport]:
    """Hidden tautology elimination + hidden literal elimination.

    Clauses are visited in order against a live implication graph:

    * **HTE** — drop clause ``C`` when for some ``l ∈ C`` the chain
      ``¬l → l'`` reaches another ``l' ∈ C`` through *other* clauses
      (then the rest of the formula entails ``C``).
    * **HLE** — inside ``C``, repeatedly remove a literal ``l`` that
      implies another literal still in ``C`` (self-subsuming resolution
      with the witnessing binary chain).

    Each removal immediately updates the graph, so later removals are
    justified only by clauses still present.  The procedure preserves
    satisfiability exactly and runs in time linear in the graph size per
    clause visit.  Clauses wider than ``max_clause_width`` are skipped
    to bound cost.
    """
    graph = BinaryImplicationGraph(formula)
    report = PruneReport()
    pruned: List[Clause] = []

    for clause in formula.clauses:
        if len(clause) > max_clause_width or len(clause) < 2:
            pruned.append(clause)
            continue
        if clause.is_tautology:
            report.clauses_removed += 1
            if len(clause) == 2:
                graph.remove_clause_edges(clause)
            continue
        literals = list(clause.literals)
        # HTE: entailed through other clauses' implications?
        tautology = False
        for lit in literals:
            others = {other for other in literals if other != lit}
            if graph.reaches_any(-lit, others, exclude=clause):
                tautology = True
                break
        if tautology:
            report.clauses_removed += 1
            if len(clause) == 2:
                graph.remove_clause_edges(clause)
            continue
        # HLE: sequentially drop literals implying a kept sibling.
        current = clause
        changed = True
        while changed and len(current) >= 2:
            changed = False
            for lit in current.literals:
                siblings = {other for other in current.literals if other != lit}
                if graph.reaches_any(lit, siblings, exclude=current):
                    narrowed = current.without(lit)
                    report.literals_removed += 1
                    if len(current) == 2:
                        graph.remove_clause_edges(current)
                    if len(narrowed) == 2:
                        graph.add_clause_edges(narrowed)
                    current = narrowed
                    changed = True
                    break
        pruned.append(current)

    out = CNF(pruned, formula.num_vars)
    report.failed_literals = BinaryImplicationGraph(out).failed_literals(
        sorted(out.variables())
    )
    return out, report


def apply_failed_literals(formula: CNF, failed: Iterable[Literal]) -> CNF:
    """Condition the formula on the negations of failed literals."""
    out = formula
    for lit in failed:
        out = out.condition(-lit)
    return out
