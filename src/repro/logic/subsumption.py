"""Clause subsumption elimination and self-subsuming resolution.

Complements hidden-literal pruning in REASON's Stage-2 preprocessing:
a clause ``C`` subsumed by ``D ⊆ C`` is redundant; and when ``D``
resolves with ``C`` on one literal to produce a subset of ``C``
(self-subsuming resolution), ``C`` can be strengthened by deleting that
literal.  Both are standard SatELite-style simplifications, exact with
respect to satisfiability (indeed logical equivalence).

Implementation uses one-watched-literal indexing: each clause is
indexed under its least-frequent literal, so subsumption candidates for
``C`` are found by scanning only the buckets of ``C``'s literals —
mirroring how the hardware's watch-list indexing turns database scans
into selective accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.logic.cnf import CNF, Clause, Literal


@dataclass
class SubsumptionReport:
    clauses_subsumed: int = 0
    literals_strengthened: int = 0
    rounds: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.clauses_subsumed or self.literals_strengthened)


def _subsumes(small: FrozenSet[Literal], big: FrozenSet[Literal]) -> bool:
    return small <= big


def eliminate_subsumed(formula: CNF, max_rounds: int = 4) -> Tuple[CNF, SubsumptionReport]:
    """Remove subsumed clauses and apply self-subsuming resolution.

    Runs to fixpoint (bounded by ``max_rounds``): strengthening a clause
    can enable new subsumptions, so the two passes alternate.  Preserves
    logical equivalence.
    """
    report = SubsumptionReport()
    clauses: List[Optional[FrozenSet[Literal]]] = [
        frozenset(c.literals) for c in formula.simplify().clauses
    ]

    for _ in range(max_rounds):
        report.rounds += 1
        changed = False

        # Index: literal -> clause indices containing it.
        buckets: Dict[Literal, List[int]] = {}
        for idx, lits in enumerate(clauses):
            if lits is None:
                continue
            for lit in lits:
                buckets.setdefault(lit, []).append(idx)

        # Forward subsumption: for each clause, check clauses sharing
        # its least-populated literal bucket.
        order = sorted(
            (i for i, c in enumerate(clauses) if c is not None),
            key=lambda i: len(clauses[i]),  # type: ignore[arg-type]
        )
        for idx in order:
            small = clauses[idx]
            if small is None or not small:
                continue  # empty clause: formula is UNSAT, keep as-is
            pivot = min(small, key=lambda l: len(buckets.get(l, ())))
            for other_idx in buckets.get(pivot, ()):
                big = clauses[other_idx]
                if other_idx == idx or big is None:
                    continue
                if len(small) < len(big) and _subsumes(small, big):
                    clauses[other_idx] = None
                    report.clauses_subsumed += 1
                    changed = True
                elif small == big and other_idx > idx:
                    clauses[other_idx] = None
                    report.clauses_subsumed += 1
                    changed = True

        # Self-subsuming resolution: D = (l ∨ R), C ⊇ (¬l ∨ R) allows
        # removing ¬l from C.
        for idx, small in enumerate(clauses):
            if small is None:
                continue
            if not small:
                continue
            for lit in list(small):
                flipped = (small - {lit}) | {-lit}
                pivot = min(flipped, key=lambda l: len(buckets.get(l, ())))
                for other_idx in buckets.get(pivot, ()):
                    big = clauses[other_idx]
                    if big is None or other_idx == idx:
                        continue
                    if -lit in big and _subsumes(flipped, big):
                        strengthened = big - {-lit}
                        if strengthened != big:
                            clauses[other_idx] = strengthened
                            report.literals_strengthened += 1
                            changed = True
        if not changed:
            break

    kept = [Clause(sorted(c)) for c in clauses if c is not None]
    return CNF(kept, formula.num_vars), report


def preprocess(formula: CNF) -> Tuple[CNF, dict]:
    """Combined Stage-2 logic preprocessing: subsumption elimination
    followed by hidden-literal pruning.

    Returns the simplified formula and a report dict with both passes'
    statistics.  Exact: the result is equisatisfiable (equivalent) to
    the input.
    """
    from repro.logic.implication_graph import prune_hidden_literals

    subsumed, sub_report = eliminate_subsumed(formula)
    pruned, hidden_report = prune_hidden_literals(subsumed)
    return pruned, {"subsumption": sub_report, "hidden_literals": hidden_report}
